// Package collector implements the paper's Policy Collector (Section 4.1):
// it rolls every congestion-control scheme through every environment of
// Set I and Set II, records the GR unit's {state, action, reward}
// trajectories, and assembles the pool of policies the offline learner
// trains on. Collection happens once; afterwards the environments are
// "unplugged" and training touches only the pool.
package collector

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/safeio"
	"sage/internal/telemetry"
)

// Trajectory is one (scheme, environment) rollout in the pool.
type Trajectory struct {
	Scheme    string
	Env       string
	MultiFlow bool
	Steps     []gr.Step
	// Score is the trajectory's mean reward: the collector keeps it so pool
	// filters (BC-top, winners-only, Sage-Top) don't have to rescan steps.
	Score float64
}

// FailedCell records a (scheme, env) rollout that failed permanently
// (panicked twice): the campaign completes without it and reports it.
type FailedCell struct {
	Scheme, Env string
	Err         string
}

// CellKey identifies one (scheme, env) cell of the collection matrix.
type CellKey struct{ Scheme, Env string }

// Pool is the pool of policies.
type Pool struct {
	GR    gr.Config
	Trajs []Trajectory
	// Failed lists cells whose rollouts failed permanently during
	// collection; it rides along in the saved pool so a resumed or merged
	// campaign still reports what is missing.
	Failed []FailedCell
}

// Transitions counts the (s,a,r,s') tuples in the pool.
func (p *Pool) Transitions() int {
	n := 0
	for _, tr := range p.Trajs {
		if len(tr.Steps) > 1 {
			n += len(tr.Steps) - 1
		}
	}
	return n
}

// Schemes returns the distinct scheme names present, in first-seen order.
func (p *Pool) Schemes() []string {
	seen := map[string]bool{}
	var out []string
	for _, tr := range p.Trajs {
		if !seen[tr.Scheme] {
			seen[tr.Scheme] = true
			out = append(out, tr.Scheme)
		}
	}
	return out
}

// Options tunes pool collection.
type Options struct {
	GR       gr.Config
	Parallel int // worker goroutines (default NumCPU)
	// Progress, when non-nil, is advanced by one per completed rollout
	// (with transitions as the extra unit), giving sage-collect its
	// live done/total, transitions/sec, and ETA line. Nil costs nothing.
	Progress *telemetry.Progress
	// Skip, when non-nil, is consulted per cell before dispatch; resumed
	// campaigns return true for cells already present in the partial pool.
	Skip func(scheme, env string) bool
	// OnCell, when non-nil, is called (from worker goroutines) as each
	// cell completes or fails permanently — the resume-manifest hook.
	// Cancelled cells are not reported; they are simply not done.
	OnCell func(scheme, env string, err error)
	// FaultHook, when non-nil, runs inside the worker before each rollout
	// attempt. It exists for the chaos harness to inject worker panics;
	// production code leaves it nil.
	FaultHook func(scheme, env string)
}

// panicError marks an error recovered from a worker panic (these are
// retried once; genuine errors are not).
type panicError struct{ msg string }

func (p *panicError) Error() string { return p.msg }

// Collect builds a pool by running each scheme through each scenario.
// Rollouts are independent and run in parallel. Scheme names are
// validated up front, so a typo fails in microseconds with the known list
// instead of panicking hours into a campaign. A worker that panics is
// recovered and its cell retried once; a second panic records the cell in
// Pool.Failed and the campaign continues. Cancelling ctx drains the
// workers and returns the completed cells with ctx's error, so callers
// can save a partial pool and resume later.
func Collect(ctx context.Context, schemes []string, scenarios []netem.Scenario, opt Options) (*Pool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cc.Validate(schemes...); err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	// Scenarios are validated up front too: a nonsensical environment
	// (zero duration, negative loss, TestStart past the end) would
	// otherwise silently collect garbage trajectories or hang a worker.
	if err := netem.ValidateAll(scenarios); err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	opt.GR = opt.GR.Fill()
	if opt.Parallel == 0 {
		opt.Parallel = runtime.NumCPU()
	}
	type job struct{ scheme, env int }
	jobs := make(chan job)
	trajs := make([]Trajectory, len(schemes)*len(scenarios))
	done := make([]bool, len(trajs))
	var mu sync.Mutex // guards failed
	var failed []FailedCell
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain remaining jobs without running them
				}
				scheme, sc := schemes[j.scheme], scenarios[j.env]
				tr, err := runCell(ctx, scheme, sc, opt)
				var pe *panicError
				if errors.As(err, &pe) && ctx.Err() == nil {
					tr, err = runCell(ctx, scheme, sc, opt) // one retry
				}
				switch {
				case err == nil:
					idx := j.scheme*len(scenarios) + j.env
					trajs[idx] = tr
					done[idx] = true
					if n := len(tr.Steps); n > 1 {
						opt.Progress.AddExtra(int64(n - 1))
					}
					opt.Progress.Add(1)
					if opt.OnCell != nil {
						opt.OnCell(scheme, sc.Name, nil)
					}
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
					// Cancelled mid-rollout: neither done nor failed.
				default:
					mu.Lock()
					failed = append(failed, FailedCell{Scheme: scheme, Env: sc.Name, Err: err.Error()})
					mu.Unlock()
					opt.Progress.Add(1)
					if opt.OnCell != nil {
						opt.OnCell(scheme, sc.Name, err)
					}
				}
			}
		}()
	}
dispatch:
	for s := range schemes {
		for e := range scenarios {
			if opt.Skip != nil && opt.Skip(schemes[s], scenarios[e].Name) {
				opt.Progress.Add(1)
				continue
			}
			select {
			case jobs <- job{s, e}:
			case <-ctx.Done():
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	p := &Pool{GR: opt.GR}
	for i, ok := range done {
		if ok {
			p.Trajs = append(p.Trajs, trajs[i])
		}
	}
	sort.Slice(failed, func(i, j int) bool {
		if failed[i].Scheme != failed[j].Scheme {
			return failed[i].Scheme < failed[j].Scheme
		}
		return failed[i].Env < failed[j].Env
	})
	p.Failed = failed
	return p, ctx.Err()
}

// CollectCell runs exactly one (scheme, env) rollout with the same
// panic-recovery-and-retry semantics as a Collect worker — the unit of
// work a distributed collection agent (internal/dist) executes per lease.
// The trajectory is a pure function of (scheme, scenario, GR config), so
// a cell collected on a remote agent is identical to the same cell
// collected in-process.
func CollectCell(ctx context.Context, scheme string, sc netem.Scenario, opt Options) (Trajectory, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cc.Validate(scheme); err != nil {
		return Trajectory{}, fmt.Errorf("collector: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Trajectory{}, fmt.Errorf("collector: %w", err)
	}
	opt.GR = opt.GR.Fill()
	tr, err := runCell(ctx, scheme, sc, opt)
	var pe *panicError
	if errors.As(err, &pe) && ctx.Err() == nil {
		tr, err = runCell(ctx, scheme, sc, opt) // one retry, like Collect
	}
	return tr, err
}

// runCell runs one (scheme, env) rollout, converting a worker panic into
// an error so one poisoned cell cannot kill the whole campaign.
func runCell(ctx context.Context, scheme string, sc netem.Scenario, opt Options) (tr Trajectory, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{msg: fmt.Sprintf("worker panic: %v", r)}
		}
	}()
	if opt.FaultHook != nil {
		opt.FaultHook(scheme, sc.Name)
	}
	impl, err := cc.New(scheme)
	if err != nil {
		return tr, err
	}
	res := rollout.Run(sc, impl, rollout.Options{
		GR:           opt.GR,
		CollectSteps: true,
		Ctx:          ctx,
	})
	if res.Interrupted {
		return tr, context.Canceled
	}
	return Trajectory{
		Scheme:    scheme,
		Env:       sc.Name,
		MultiFlow: sc.CubicFlows > 0,
		Steps:     res.Steps,
		Score:     meanReward(res.Steps),
	}, nil
}

func meanReward(steps []gr.Step) float64 {
	if len(steps) == 0 {
		return 0
	}
	s := 0.0
	for _, st := range steps {
		s += st.Reward
	}
	return s / float64(len(steps))
}

// Merge combines pools collected separately (e.g. Set I and Set II).
// Every pool must have been collected under the same GR configuration —
// trajectories sampled at different intervals or window sizes are not
// comparable training data, so a mismatch is an error rather than a
// silently mixed pool. Configs are compared after Fill, so an unset
// field and its explicit default are the same config. For merging shard
// files off disk, use MergeShardFiles, which streams one shard at a time
// instead of requiring every pool in memory at once.
func Merge(pools ...*Pool) (*Pool, error) {
	m := newMerger()
	for i, p := range pools {
		if err := m.add(fmt.Sprintf("pool %d", i), p); err != nil {
			return nil, err
		}
	}
	return m.result(), nil
}

// merger accumulates pools one at a time, deduplicating by cell so a
// shard re-collected by a revived agent cannot double a trajectory, and
// dropping Failed entries for cells another shard did complete.
type merger struct {
	out       *Pool
	seen      map[CellKey]bool
	failedSet map[CellKey]bool
	first     bool
	want      gr.Config
}

func newMerger() *merger {
	return &merger{out: &Pool{}, seen: map[CellKey]bool{}, failedSet: map[CellKey]bool{}, first: true}
}

func (m *merger) add(name string, p *Pool) error {
	if m.first {
		m.out.GR = p.GR
		m.want = p.GR.Fill()
		m.first = false
	} else if got := p.GR.Fill(); got != m.want {
		return fmt.Errorf("collector: merge: %s GR config %+v differs from first pool %+v", name, got, m.want)
	}
	for _, tr := range p.Trajs {
		key := CellKey{tr.Scheme, tr.Env}
		if m.seen[key] {
			continue // duplicate cell (revived agent, overlapping shards): first wins
		}
		m.seen[key] = true
		m.out.Trajs = append(m.out.Trajs, tr)
	}
	for _, f := range p.Failed {
		key := CellKey{f.Scheme, f.Env}
		if m.failedSet[key] {
			continue
		}
		m.failedSet[key] = true
		m.out.Failed = append(m.out.Failed, f)
	}
	return nil
}

// result finalizes the merge: a cell that failed on one agent but was
// completed by another (lease reassignment) is not a failure of the
// campaign, so its Failed entry is dropped.
func (m *merger) result() *Pool {
	if m.first {
		return &Pool{}
	}
	kept := m.out.Failed[:0]
	for _, f := range m.out.Failed {
		if !m.seen[CellKey{f.Scheme, f.Env}] {
			kept = append(kept, f)
		}
	}
	m.out.Failed = kept
	return m.out
}

// MergeShardFiles streams the shard pools at paths into one deduplicated
// pool. Shards are loaded, appended, and released one at a time, so peak
// memory is one shard plus the accumulating result — not the sum of all
// shards, which at paper scale (>60M transitions across hundreds of
// shards) would not fit. A shard that fails checksum verification (or
// any load/config check) is identified by path in the returned error, so
// an operator can delete or re-collect exactly the bad shard.
func MergeShardFiles(paths ...string) (*Pool, error) {
	m := newMerger()
	for _, path := range paths {
		p, err := Load(path)
		if err != nil {
			return nil, fmt.Errorf("collector: merge: shard %s: %w", path, err)
		}
		if err := m.add("shard "+path, p); err != nil {
			return nil, err
		}
	}
	return m.result(), nil
}

// SortByCell orders trajectories canonically by (scheme, env). Resumed
// campaigns merge a partial pool with freshly collected cells; sorting
// before the final save makes the result bitwise-identical to an
// uninterrupted run regardless of where the interruption fell.
func (p *Pool) SortByCell() {
	sort.Slice(p.Trajs, func(i, j int) bool {
		if p.Trajs[i].Scheme != p.Trajs[j].Scheme {
			return p.Trajs[i].Scheme < p.Trajs[j].Scheme
		}
		return p.Trajs[i].Env < p.Trajs[j].Env
	})
	sort.Slice(p.Failed, func(i, j int) bool {
		if p.Failed[i].Scheme != p.Failed[j].Scheme {
			return p.Failed[i].Scheme < p.Failed[j].Scheme
		}
		return p.Failed[i].Env < p.Failed[j].Env
	})
}

// Cells returns the set of (scheme, env) cells present in the pool — the
// resume path intersects it with the manifest to decide what to skip.
func (p *Pool) Cells() map[CellKey]bool {
	out := make(map[CellKey]bool, len(p.Trajs))
	for _, tr := range p.Trajs {
		out[CellKey{tr.Scheme, tr.Env}] = true
	}
	return out
}

// FilterSchemes keeps only trajectories from the named schemes (the
// Sage-Top / Sage-Top4 pools of Fig. 15 and the BC-top variants of Fig. 9).
func (p *Pool) FilterSchemes(names ...string) *Pool {
	keep := map[string]bool{}
	for _, n := range names {
		keep[n] = true
	}
	out := &Pool{GR: p.GR}
	for _, tr := range p.Trajs {
		if keep[tr.Scheme] {
			out.Trajs = append(out.Trajs, tr)
		}
	}
	return out
}

// WinnersPerEnv keeps, for each environment, only the trajectory with the
// best score (the BCv2 pool: "only the winner policies of each particular
// scenario").
func (p *Pool) WinnersPerEnv() *Pool {
	best := map[string]int{}
	for i, tr := range p.Trajs {
		j, ok := best[tr.Env]
		if !ok || tr.Score > p.Trajs[j].Score {
			best[tr.Env] = i
		}
	}
	out := &Pool{GR: p.GR}
	for _, i := range best {
		out.Trajs = append(out.Trajs, p.Trajs[i])
	}
	return out
}

// TopSchemes ranks schemes by their mean score over single-flow and
// multi-flow trajectories separately and returns the union of the top k of
// each ranking (the construction behind Sage-Top and Sage-Top4).
func (p *Pool) TopSchemes(k int) []string {
	type agg struct {
		sum float64
		n   int
	}
	single := map[string]*agg{}
	multi := map[string]*agg{}
	for _, tr := range p.Trajs {
		m := single
		if tr.MultiFlow {
			m = multi
		}
		a := m[tr.Scheme]
		if a == nil {
			a = &agg{}
			m[tr.Scheme] = a
		}
		a.sum += tr.Score
		a.n++
	}
	top := func(m map[string]*agg) []string {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if m[names[j]].sum/float64(m[names[j]].n) > m[names[i]].sum/float64(m[names[i]].n) {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		if len(names) > k {
			names = names[:k]
		}
		return names
	}
	seen := map[string]bool{}
	var out []string
	for _, n := range append(top(single), top(multi)...) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Save writes the pool as gzipped gob inside safeio's atomic, checksummed
// container: an interrupted save leaves any previous pool at path intact.
func (p *Pool) Save(path string) error {
	if err := safeio.WriteGobGz(path, p); err != nil {
		return fmt.Errorf("collector: save: %w", err)
	}
	return nil
}

// Load reads a pool written by Save (or a legacy pre-container pool),
// detecting truncation and corruption before decoding.
func Load(path string) (*Pool, error) {
	var p Pool
	if err := safeio.ReadGobGz(path, &p); err != nil {
		return nil, fmt.Errorf("collector: load: %w", err)
	}
	return &p, nil
}
