// Package collector implements the paper's Policy Collector (Section 4.1):
// it rolls every congestion-control scheme through every environment of
// Set I and Set II, records the GR unit's {state, action, reward}
// trajectories, and assembles the pool of policies the offline learner
// trains on. Collection happens once; afterwards the environments are
// "unplugged" and training touches only the pool.
package collector

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"runtime"
	"sync"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/telemetry"
)

// Trajectory is one (scheme, environment) rollout in the pool.
type Trajectory struct {
	Scheme    string
	Env       string
	MultiFlow bool
	Steps     []gr.Step
	// Score is the trajectory's mean reward: the collector keeps it so pool
	// filters (BC-top, winners-only, Sage-Top) don't have to rescan steps.
	Score float64
}

// Pool is the pool of policies.
type Pool struct {
	GR    gr.Config
	Trajs []Trajectory
}

// Transitions counts the (s,a,r,s') tuples in the pool.
func (p *Pool) Transitions() int {
	n := 0
	for _, tr := range p.Trajs {
		if len(tr.Steps) > 1 {
			n += len(tr.Steps) - 1
		}
	}
	return n
}

// Schemes returns the distinct scheme names present, in first-seen order.
func (p *Pool) Schemes() []string {
	seen := map[string]bool{}
	var out []string
	for _, tr := range p.Trajs {
		if !seen[tr.Scheme] {
			seen[tr.Scheme] = true
			out = append(out, tr.Scheme)
		}
	}
	return out
}

// Options tunes pool collection.
type Options struct {
	GR       gr.Config
	Parallel int // worker goroutines (default NumCPU)
	// Progress, when non-nil, is advanced by one per completed rollout
	// (with transitions as the extra unit), giving sage-collect its
	// live done/total, transitions/sec, and ETA line. Nil costs nothing.
	Progress *telemetry.Progress
}

// Collect builds a pool by running each scheme through each scenario.
// Rollouts are independent and run in parallel.
func Collect(schemes []string, scenarios []netem.Scenario, opt Options) *Pool {
	opt.GR = opt.GR.Fill()
	if opt.Parallel == 0 {
		opt.Parallel = runtime.NumCPU()
	}
	type job struct{ scheme, env int }
	jobs := make(chan job)
	trajs := make([]Trajectory, len(schemes)*len(scenarios))
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				sc := scenarios[j.env]
				res := rollout.Run(sc, cc.MustNew(schemes[j.scheme]), rollout.Options{
					GR:           opt.GR,
					CollectSteps: true,
				})
				trajs[j.scheme*len(scenarios)+j.env] = Trajectory{
					Scheme:    schemes[j.scheme],
					Env:       sc.Name,
					MultiFlow: sc.CubicFlows > 0,
					Steps:     res.Steps,
					Score:     meanReward(res.Steps),
				}
				if n := len(res.Steps); n > 1 {
					opt.Progress.AddExtra(int64(n - 1))
				}
				opt.Progress.Add(1)
			}
		}()
	}
	for s := range schemes {
		for e := range scenarios {
			jobs <- job{s, e}
		}
	}
	close(jobs)
	wg.Wait()
	return &Pool{GR: opt.GR, Trajs: trajs}
}

func meanReward(steps []gr.Step) float64 {
	if len(steps) == 0 {
		return 0
	}
	s := 0.0
	for _, st := range steps {
		s += st.Reward
	}
	return s / float64(len(steps))
}

// Merge combines pools collected separately (e.g. Set I and Set II).
// Every pool must have been collected under the same GR configuration —
// trajectories sampled at different intervals or window sizes are not
// comparable training data, so a mismatch is an error rather than a
// silently mixed pool. Configs are compared after Fill, so an unset
// field and its explicit default are the same config.
func Merge(pools ...*Pool) (*Pool, error) {
	if len(pools) == 0 {
		return &Pool{}, nil
	}
	out := &Pool{GR: pools[0].GR}
	want := pools[0].GR.Fill()
	for i, p := range pools {
		if got := p.GR.Fill(); got != want {
			return nil, fmt.Errorf("collector: merge: pool %d GR config %+v differs from pool 0 %+v", i, got, want)
		}
		out.Trajs = append(out.Trajs, p.Trajs...)
	}
	return out, nil
}

// FilterSchemes keeps only trajectories from the named schemes (the
// Sage-Top / Sage-Top4 pools of Fig. 15 and the BC-top variants of Fig. 9).
func (p *Pool) FilterSchemes(names ...string) *Pool {
	keep := map[string]bool{}
	for _, n := range names {
		keep[n] = true
	}
	out := &Pool{GR: p.GR}
	for _, tr := range p.Trajs {
		if keep[tr.Scheme] {
			out.Trajs = append(out.Trajs, tr)
		}
	}
	return out
}

// WinnersPerEnv keeps, for each environment, only the trajectory with the
// best score (the BCv2 pool: "only the winner policies of each particular
// scenario").
func (p *Pool) WinnersPerEnv() *Pool {
	best := map[string]int{}
	for i, tr := range p.Trajs {
		j, ok := best[tr.Env]
		if !ok || tr.Score > p.Trajs[j].Score {
			best[tr.Env] = i
		}
	}
	out := &Pool{GR: p.GR}
	for _, i := range best {
		out.Trajs = append(out.Trajs, p.Trajs[i])
	}
	return out
}

// TopSchemes ranks schemes by their mean score over single-flow and
// multi-flow trajectories separately and returns the union of the top k of
// each ranking (the construction behind Sage-Top and Sage-Top4).
func (p *Pool) TopSchemes(k int) []string {
	type agg struct {
		sum float64
		n   int
	}
	single := map[string]*agg{}
	multi := map[string]*agg{}
	for _, tr := range p.Trajs {
		m := single
		if tr.MultiFlow {
			m = multi
		}
		a := m[tr.Scheme]
		if a == nil {
			a = &agg{}
			m[tr.Scheme] = a
		}
		a.sum += tr.Score
		a.n++
	}
	top := func(m map[string]*agg) []string {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if m[names[j]].sum/float64(m[names[j]].n) > m[names[i]].sum/float64(m[names[i]].n) {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		if len(names) > k {
			names = names[:k]
		}
		return names
	}
	seen := map[string]bool{}
	var out []string
	for _, n := range append(top(single), top(multi)...) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Save writes the pool as gzipped gob. The file is closed exactly once,
// and close errors surface (a deferred second Close on a closed *os.File
// would both double-close and swallow write-back failures).
func (p *Pool) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("collector: save: %w", err)
	}
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(p); err != nil {
		f.Close()
		return fmt.Errorf("collector: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return fmt.Errorf("collector: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("collector: save: %w", err)
	}
	return nil
}

// Load reads a pool written by Save.
func Load(path string) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("collector: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("collector: gzip: %w", err)
	}
	var p Pool
	if err := gob.NewDecoder(zr).Decode(&p); err != nil {
		return nil, fmt.Errorf("collector: decode: %w", err)
	}
	return &p, nil
}
