package collector

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sage/internal/safeio"
)

// TestMergeDeduplicatesCells: merging pools that share cells keeps the
// first copy (cells are deterministic, so copies are identical), and a
// Failed entry for a cell that succeeded elsewhere is dropped.
func TestMergeDeduplicatesCells(t *testing.T) {
	sc := tinyScenarios()[:2]
	a := mustCollect(t, []string{"cubic"}, sc, Options{Parallel: 2})
	b := mustCollect(t, []string{"cubic"}, sc[:1], Options{Parallel: 2}) // duplicates one cell
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trajs) != 2 {
		t.Fatalf("merged = %d trajs, want 2 (duplicate cell kept)", len(m.Trajs))
	}

	// A failure superseded by a success (lease reassignment after a flaky
	// agent) must not survive the merge.
	fail := &Pool{GR: a.GR, Failed: []FailedCell{{Scheme: "cubic", Env: a.Trajs[0].Env, Err: "agent died"}}}
	m2, err := Merge(fail, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Failed) != 0 {
		t.Fatalf("superseded failure survived: %v", m2.Failed)
	}
	if len(m2.Trajs) != 2 {
		t.Fatalf("merged = %d trajs", len(m2.Trajs))
	}

	// A failure nothing supersedes is kept exactly once.
	fail2 := &Pool{GR: a.GR, Failed: []FailedCell{{Scheme: "vegas", Env: "nowhere", Err: "x"}}}
	m3, err := Merge(fail2, fail2, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Failed) != 1 {
		t.Fatalf("failures = %v, want exactly one", m3.Failed)
	}
}

// TestMergeShardFiles: the streaming merge over shard files equals the
// in-memory merge of the same pools.
func TestMergeShardFiles(t *testing.T) {
	sc := tinyScenarios()[:2]
	a := mustCollect(t, []string{"cubic"}, sc[:1], Options{Parallel: 2})
	b := mustCollect(t, []string{"cubic"}, sc[1:2], Options{Parallel: 2})
	c := mustCollect(t, []string{"vegas"}, sc[:1], Options{Parallel: 2})

	dir := t.TempDir()
	paths := make([]string, 0, 3)
	for i, p := range []*Pool{a, b, c} {
		path := filepath.Join(dir, "shard-"+string(rune('a'+i))+".pool")
		if err := p.Save(path); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	streamed, err := MergeShardFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := Merge(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	streamed.SortByCell()
	inMem.SortByCell()
	if !reflect.DeepEqual(streamed, inMem) {
		t.Fatal("streamed merge differs from in-memory merge")
	}

	empty, err := MergeShardFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Trajs) != 0 {
		t.Fatalf("empty merge has %d trajs", len(empty.Trajs))
	}
}

// TestMergeShardFilesNamesFailingShard: a corrupt shard's error names the
// file, so an operator knows which shard to delete or re-collect.
func TestMergeShardFilesNamesFailingShard(t *testing.T) {
	sc := tinyScenarios()[:1]
	a := mustCollect(t, []string{"cubic"}, sc, Options{Parallel: 2})
	dir := t.TempDir()
	good := filepath.Join(dir, "good.pool")
	bad := filepath.Join(dir, "bad.pool")
	if err := a.Save(good); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(bad); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(bad)
	raw[len(raw)/2] ^= 0x40
	os.WriteFile(bad, raw, 0o644)

	_, err := MergeShardFiles(good, bad)
	if err == nil {
		t.Fatal("corrupt shard merged silently")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("error does not name the failing shard: %v", err)
	}
	if !errors.Is(err, safeio.ErrCorrupt) {
		t.Fatalf("error lost the corruption cause: %v", err)
	}
}

// TestMergeShardFilesZeroLengthShard: a zero-byte shard (crash between
// create and write, or a full disk) fails the merge with an error naming
// the shard, and no partial pool escapes.
func TestMergeShardFilesZeroLengthShard(t *testing.T) {
	sc := tinyScenarios()[:1]
	a := mustCollect(t, []string{"cubic"}, sc, Options{Parallel: 2})
	dir := t.TempDir()
	good := filepath.Join(dir, "good.pool")
	empty := filepath.Join(dir, "empty.pool")
	if err := a.Save(good); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	pool, err := MergeShardFiles(good, empty)
	if err == nil {
		t.Fatal("zero-length shard merged silently")
	}
	if pool != nil {
		t.Fatal("failed merge still returned a partial pool")
	}
	if !strings.Contains(err.Error(), empty) {
		t.Fatalf("error does not name the zero-length shard: %v", err)
	}
	if !errors.Is(err, safeio.ErrTruncated) {
		t.Fatalf("error lost the truncation cause: %v", err)
	}
}

// TestMergeShardFilesTruncatedShard: a shard cut off mid-stream (torn
// copy, interrupted upload) is detected, named, and aborts the merge —
// order of arguments must not matter.
func TestMergeShardFilesTruncatedShard(t *testing.T) {
	sc := tinyScenarios()[:2]
	a := mustCollect(t, []string{"cubic"}, sc[:1], Options{Parallel: 2})
	b := mustCollect(t, []string{"cubic"}, sc[1:2], Options{Parallel: 2})
	dir := t.TempDir()
	good := filepath.Join(dir, "good.pool")
	torn := filepath.Join(dir, "torn.pool")
	if err := a.Save(good); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(torn); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(torn, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	for _, order := range [][]string{{good, torn}, {torn, good}} {
		pool, err := MergeShardFiles(order...)
		if err == nil {
			t.Fatalf("truncated shard merged silently (order %v)", order)
		}
		if pool != nil {
			t.Fatal("failed merge still returned a partial pool")
		}
		if !strings.Contains(err.Error(), torn) {
			t.Fatalf("error does not name the truncated shard: %v", err)
		}
		if !errors.Is(err, safeio.ErrTruncated) && !errors.Is(err, safeio.ErrCorrupt) {
			t.Fatalf("error lost the underlying cause: %v", err)
		}
	}
}
