package collector

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// A Manifest is the append-only JSONL ledger of a collection campaign:
// one line per cell as it completes ("ok") or fails permanently
// ("failed"). sage-collect -resume reads it back to skip finished work.
// Appends are O_APPEND + per-line fsync, so a crash can at worst tear the
// final line — which the loader detects and ignores — and never corrupts
// earlier entries.
type Manifest struct {
	mu sync.Mutex
	f  *os.File
}

// manifestEntry is one JSONL line of the ledger.
type manifestEntry struct {
	Scheme string `json:"scheme"`
	Env    string `json:"env"`
	Status string `json:"status"` // "ok" | "failed"
	Err    string `json:"err,omitempty"`
}

// OpenManifest opens (creating if needed) the campaign ledger at path and
// returns it together with the status of every cell already recorded —
// later entries win, so a cell that failed in one run and succeeded on
// resume reads back as "ok".
func OpenManifest(path string) (*Manifest, map[CellKey]string, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("collector: manifest: %w", err)
	}
	done := map[CellKey]string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		var e manifestEntry
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			break // torn final line from a crash mid-append: stop here
		}
		done[CellKey{e.Scheme, e.Env}] = e.Status
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("collector: manifest read: %w", err)
	}
	return &Manifest{f: f}, done, nil
}

// Record appends one cell outcome and fsyncs it. It matches the
// Options.OnCell signature, so it can be passed directly to Collect.
// Write errors are reported on Close rather than per call — a worker
// finishing a rollout should not die because the ledger disk hiccuped.
func (m *Manifest) Record(scheme, env string, cellErr error) {
	e := manifestEntry{Scheme: scheme, Env: env, Status: "ok"}
	if cellErr != nil {
		e.Status = "failed"
		e.Err = cellErr.Error()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return
	}
	if _, err := m.f.Write(append(line, '\n')); err == nil {
		m.f.Sync()
	}
}

// Close closes the ledger file. The file itself is kept; the caller
// removes it once the campaign's final pool is safely on disk.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
