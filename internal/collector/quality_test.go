package collector

import (
	"bufio"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sage/internal/gr"
)

func qTraj(scheme string, n int) Trajectory {
	tr := Trajectory{Scheme: scheme, Env: "env"}
	for i := 0; i < n; i++ {
		tr.Steps = append(tr.Steps, gr.Step{
			State:  []float64{float64(i), 1},
			Action: 1.0,
			Reward: 0.5,
		})
	}
	return tr
}

func TestCheckTrajectoryFindsEachPoison(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trajectory)
		reason string
	}{
		{"empty", func(tr *Trajectory) { tr.Steps = nil }, ReasonTruncated},
		{"single-step", func(tr *Trajectory) { tr.Steps = tr.Steps[:1] }, ReasonTruncated},
		{"nan-state", func(tr *Trajectory) { tr.Steps[3].State[0] = math.NaN() }, ReasonNonFiniteState},
		{"inf-state", func(tr *Trajectory) { tr.Steps[3].State[1] = math.Inf(1) }, ReasonNonFiniteState},
		{"nan-action", func(tr *Trajectory) { tr.Steps[2].Action = math.NaN() }, ReasonNonFiniteAction},
		{"zero-action", func(tr *Trajectory) { tr.Steps[2].Action = 0 }, ReasonActionRange},
		{"huge-action", func(tr *Trajectory) { tr.Steps[2].Action = 1e9 }, ReasonActionRange},
		{"nan-reward", func(tr *Trajectory) { tr.Steps[4].Reward = math.NaN() }, ReasonNonFiniteReward},
		{"huge-reward", func(tr *Trajectory) { tr.Steps[4].Reward = 1e12 }, ReasonRewardRange},
		{"frozen", func(tr *Trajectory) {
			for i := range tr.Steps {
				tr.Steps[i].State = []float64{7, 7}
			}
		}, ReasonFrozenState},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := qTraj("s", 80)
			tc.mutate(&tr)
			issues := CheckTrajectory(tr, QualityConfig{FrozenRun: 16})
			if len(issues) == 0 {
				t.Fatal("poison not detected")
			}
			if issues[0].Reason != tc.reason {
				t.Fatalf("reason %q, want %q", issues[0].Reason, tc.reason)
			}
		})
	}
}

func TestCheckTrajectoryCleanPasses(t *testing.T) {
	tr := qTraj("s", 80)
	if issues := CheckTrajectory(tr, QualityConfig{}); len(issues) != 0 {
		t.Fatalf("clean trajectory flagged: %+v", issues)
	}
}

func TestSanitizeQuarantinesAndReports(t *testing.T) {
	p := &Pool{}
	p.Trajs = []Trajectory{qTraj("a", 40), qTraj("b", 40), qTraj("c", 40)}
	p.Trajs[1].Steps[5].Reward = math.NaN()

	clean, rep := Sanitize(p, QualityConfig{})
	if rep.Total != 3 || rep.Kept != 2 || rep.Quarantined != 1 {
		t.Fatalf("report %+v", rep)
	}
	if len(clean.Trajs) != 2 {
		t.Fatalf("clean pool has %d trajs", len(clean.Trajs))
	}
	for _, tr := range clean.Trajs {
		if tr.Scheme == "b" {
			t.Fatal("poisoned trajectory survived sanitize")
		}
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Index != 1 || rep.Issues[0].Scheme != "b" {
		t.Fatalf("issues %+v", rep.Issues)
	}

	// Sidecar must round-trip as JSONL: a summary line plus one per issue.
	path := filepath.Join(t.TempDir(), "pool.quarantine.jsonl")
	if err := rep.WriteSidecar(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		var m map[string]any
		if err := json.Unmarshal(scan.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("%d sidecar lines, want 2", lines)
	}
}
