package collector

import (
	"context"
	"strings"
	"testing"

	"sage/internal/netem"
	"sage/internal/sim"
)

// TestCollectRejectsInvalidScenario: scenario validation runs before any
// rollout, so a nonsensical hand-built scenario fails fast with a
// descriptive error instead of stalling a whole collection campaign.
func TestCollectRejectsInvalidScenario(t *testing.T) {
	bad := netem.Scenario{
		Name:   "dead-link",
		Rate:   netem.FlatRate(0), // could never carry a bit
		MinRTT: 20 * sim.Millisecond,
	}
	_, err := Collect(context.Background(), []string{"cubic"}, []netem.Scenario{bad}, Options{})
	if err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if !strings.Contains(err.Error(), "dead-link") {
		t.Fatalf("error %q does not name the offending scenario", err)
	}
}
