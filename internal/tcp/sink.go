package tcp

import (
	"sage/internal/netem"
	"sage/internal/sim"
)

// Sink is the receiver endpoint: it acknowledges data packets and keeps the
// receiver-side statistics the evaluation harness consumes (throughput
// measured at the receiver, one-way packet delay). With delayed ACKs
// enabled it coalesces up to two data packets per ACK, flushing after
// DelAckTimeout — the kernel behaviour behind the paper's "Ack
// accumulation" remark.
type Sink struct {
	net  *netem.Network
	loop *sim.Loop

	// DelAck enables RFC 1122-style delayed acknowledgments.
	DelAck bool
	// DelAckTimeout flushes a lone pending ACK (default 40 ms).
	DelAckTimeout sim.Time

	RxBytes int64
	RxPkts  int64
	owdSum  sim.Time
	owdMax  sim.Time
	AcksTx  int64

	pending  []ackItem
	pendID   int
	delTimer sim.Handle
}

// NewSink returns a sink that acknowledges over n.
func NewSink(n *netem.Network) *Sink { return &Sink{net: n, DelAckTimeout: 40 * sim.Millisecond} }

// NewDelAckSink returns a sink with delayed acknowledgments enabled; it
// needs the loop for the flush timer.
func NewDelAckSink(loop *sim.Loop, n *netem.Network) *Sink {
	s := NewSink(n)
	s.loop = loop
	s.DelAck = true
	return s
}

// Receive implements netem.Receiver for the data path.
func (s *Sink) Receive(p *netem.Packet, now sim.Time) {
	s.RxBytes += int64(p.Size)
	s.RxPkts++
	owd := now - p.Sent
	s.owdSum += owd
	if owd > s.owdMax {
		s.owdMax = owd
	}
	item := ackItem{Seq: p.Seq, SentAt: p.Sent, ECE: p.ECE}
	if !s.DelAck || s.loop == nil {
		s.send(p.FlowID, now, []ackItem{item})
		return
	}
	s.pending = append(s.pending, item)
	s.pendID = p.FlowID
	if len(s.pending) >= 2 || p.ECE {
		// ECN marks must be echoed promptly (RFC 3168 §6.1.3).
		s.flush(now)
		return
	}
	if !s.delTimer.Pending() {
		s.delTimer = s.loop.After(s.DelAckTimeout, s.flush)
	}
}

func (s *Sink) flush(now sim.Time) {
	if len(s.pending) == 0 {
		return
	}
	s.delTimer.Cancel()
	items := s.pending
	s.pending = nil
	s.send(s.pendID, now, items)
}

func (s *Sink) send(flowID int, now sim.Time, items []ackItem) {
	s.AcksTx++
	ack := &netem.Packet{FlowID: flowID, Seq: items[len(items)-1].Seq, Size: 40,
		Ack: true, Sent: now, Payload: &ackInfo{Items: items}}
	s.net.SendAck(ack, now)
}

// OWDAvg returns the mean one-way delay of received packets.
func (s *Sink) OWDAvg() sim.Time {
	if s.RxPkts == 0 {
		return 0
	}
	return s.owdSum / sim.Time(s.RxPkts)
}

// OWDMax returns the maximum observed one-way delay.
func (s *Sink) OWDMax() sim.Time { return s.owdMax }

// Totals returns the cumulative received bytes, packets, and the sum of
// one-way delays — the counters interval scoring snapshots.
func (s *Sink) Totals() (bytes, pkts int64, owdSum sim.Time) {
	return s.RxBytes, s.RxPkts, s.owdSum
}

// Flow bundles a connection with its sink, attached to a network.
type Flow struct {
	Conn *Conn
	Sink *Sink
}

// NewFlow creates a connection+sink pair for flow id and attaches both
// endpoints to n. Call Flow.Conn.Start to begin. Set opt.DelAck for
// delayed acknowledgments at the receiver.
func NewFlow(loop *sim.Loop, n *netem.Network, id int, cc CongestionControl, opt Options) *Flow {
	conn := NewConn(loop, n, id, cc, opt)
	var sink *Sink
	if opt.DelAck {
		sink = NewDelAckSink(loop, n)
	} else {
		sink = NewSink(n)
	}
	n.Attach(id, netem.Endpoints{Data: sink, Ack: conn})
	return &Flow{Conn: conn, Sink: sink}
}
