package tcp

// ClampCwnd bounds a proposed congestion window to [floor, ceil]; a
// non-positive ceil means "no ceiling". It is the single cwnd-sanity
// helper shared by the policy controllers (rl.PolicyController,
// core.Agent) and the runtime guardian, so the floor lives in exactly one
// place.
//
// NaN is deliberately passed through unchanged: both comparisons are
// false for NaN, matching the raw `w < floor` checks this helper
// replaces. Detecting (and recovering from) a non-finite window is the
// guardian's job, not the clamp's — silently mapping NaN to the floor
// would mask the very failures internal/guard exists to catch.
func ClampCwnd(w, floor, ceil float64) float64 {
	if w < floor {
		return floor
	}
	if ceil > 0 && w > ceil {
		return ceil
	}
	return w
}
