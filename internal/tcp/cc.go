// Package tcp implements the transport datapath the paper's kernel provides:
// a window-based sender with per-packet acknowledgments, RFC 6298 RTT
// estimation, RACK-style time-based loss detection, RTO with backoff,
// BBR-style delivery-rate sampling, and optional pacing. Congestion-control
// algorithms plug in through the CongestionControl interface, which mirrors
// the hook surface of Linux's tcp_congestion_ops.
package tcp

import "sage/internal/sim"

// CAState is the sender's congestion-avoidance machine state, mirroring the
// Linux socket's ca_state (the GR unit records it as input signal #4).
type CAState int

// Congestion-avoidance states.
const (
	StateOpen CAState = iota
	StateRecovery
	StateLoss
)

// String names the state like the kernel does.
func (s CAState) String() string {
	switch s {
	case StateOpen:
		return "Open"
	case StateRecovery:
		return "Recovery"
	case StateLoss:
		return "Loss"
	}
	return "unknown"
}

// AckEvent describes one processed acknowledgment, handed to the
// congestion-control module.
type AckEvent struct {
	Now          sim.Time
	AckedPkts    int      // packets newly acknowledged by this ACK (>=1)
	RTT          sim.Time // raw RTT sample carried by this ACK
	SRTT         sim.Time
	MinRTT       sim.Time
	DeliveryRate float64 // latest delivery-rate sample, bytes/second
	Inflight     int     // packets in flight after this ACK
	State        CAState
	ECE          bool // this ACK echoed an ECN congestion-experienced mark
}

// CongestionControl is the pluggable congestion controller. Implementations
// mutate the connection's Cwnd/Ssthresh/PacingRate through the *Conn they
// are handed, exactly as kernel modules mutate the tcp_sock.
type CongestionControl interface {
	// Name returns the scheme's name as used in the paper's figures.
	Name() string
	// Init is called once when the connection starts.
	Init(c *Conn)
	// OnAck is called for every processed acknowledgment.
	OnAck(c *Conn, e AckEvent)
	// OnLoss is called once when the connection enters fast recovery
	// (the kernel's ssthresh event). lostPkts is the number of packets
	// declared lost so far in this episode.
	OnLoss(c *Conn, lostPkts int, now sim.Time)
	// OnRTO is called when the retransmission timer fires.
	OnRTO(c *Conn, now sim.Time)
}
