package tcp

import (
	"math"
	"testing"

	"sage/internal/netem"
	"sage/internal/sim"
)

// fixedCC holds a constant congestion window: the simplest possible scheme,
// used to validate the datapath itself.
type fixedCC struct{ w float64 }

func (f *fixedCC) Name() string                      { return "fixed" }
func (f *fixedCC) Init(c *Conn)                      { c.SetCwnd(f.w) }
func (f *fixedCC) OnAck(c *Conn, e AckEvent)         { c.SetCwnd(f.w) }
func (f *fixedCC) OnLoss(c *Conn, n int, t sim.Time) {}
func (f *fixedCC) OnRTO(c *Conn, t sim.Time)         { c.SetCwnd(f.w) }

func runScenario(t *testing.T, rate *netem.RateSchedule, rtt sim.Time, qBytes int, cc CongestionControl, dur sim.Time) (*Flow, *sim.Loop) {
	t.Helper()
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{Rate: rate, MinRTT: rtt, Queue: netem.NewDropTail(qBytes)})
	fl := NewFlow(loop, n, 1, cc, Options{})
	fl.Conn.Start(0)
	loop.RunUntil(dur)
	return fl, loop
}

func TestFixedWindowThroughputBelowBDP(t *testing.T) {
	// 12 Mb/s, 40 ms RTT: BDP = 40 pkts. cwnd=10 -> thr ~ 10*1500*8/40ms = 3 Mb/s.
	fl, _ := runScenario(t, netem.FlatRate(netem.Mbps(12)), 40*sim.Millisecond, 1<<20, &fixedCC{w: 10}, 10*sim.Second)
	thr := float64(fl.Sink.RxBytes) * 8 / 10 // bits/sec over 10 s
	if math.Abs(thr-3e6)/3e6 > 0.1 {
		t.Fatalf("throughput = %.2f Mb/s, want ~3", thr/1e6)
	}
	if fl.Conn.LostPkts() != 0 {
		t.Fatalf("unexpected losses: %d", fl.Conn.LostPkts())
	}
	// RTT should be close to the propagation floor (tiny queueing).
	if fl.Conn.SRTT() < 40*sim.Millisecond || fl.Conn.SRTT() > 45*sim.Millisecond {
		t.Fatalf("srtt = %v", fl.Conn.SRTT())
	}
}

func TestFixedWindowSaturatesLink(t *testing.T) {
	// cwnd=200 over a 40-pkt BDP with a large buffer: the link saturates.
	fl, _ := runScenario(t, netem.FlatRate(netem.Mbps(12)), 40*sim.Millisecond, 1<<22, &fixedCC{w: 200}, 10*sim.Second)
	thr := float64(fl.Sink.RxBytes) * 8 / 10
	if thr < 0.9*12e6 {
		t.Fatalf("throughput = %.2f Mb/s, want ~12", thr/1e6)
	}
	// Standing queue of ~160 pkts at 1 ms/pkt -> RTT inflated by ~160 ms.
	if fl.Conn.SRTT() < 150*sim.Millisecond {
		t.Fatalf("srtt = %v, expected bufferbloat", fl.Conn.SRTT())
	}
	if got := fl.Conn.MinRTT(); got > 45*sim.Millisecond {
		t.Fatalf("minRTT = %v, want near propagation", got)
	}
}

func TestLossDetectedInShallowBuffer(t *testing.T) {
	// cwnd=200 but buffer only holds ~8 packets: overflow must be detected
	// as loss, not hang the connection.
	fl, _ := runScenario(t, netem.FlatRate(netem.Mbps(12)), 20*sim.Millisecond, 8*netem.MTU, &fixedCC{w: 200}, 5*sim.Second)
	if fl.Conn.LostPkts() == 0 {
		t.Fatal("no losses detected despite overflow")
	}
	if fl.Conn.RecoveryEpisodes() == 0 {
		t.Fatal("never entered recovery")
	}
	// The flow must keep delivering after losses.
	if fl.Sink.RxBytes < int64(2*1e6/8) {
		t.Fatalf("throughput collapsed: %d bytes", fl.Sink.RxBytes)
	}
	// Packet conservation: sent = delivered + lost + still-in-flight (+spurious overlap).
	c := fl.Conn
	if c.SentPkts() != c.DeliveredPkts()+c.LostPkts()-c.SpuriousRetrans()+int64(c.InflightPkts()) {
		t.Fatalf("conservation: sent=%d delivered=%d lost=%d spurious=%d inflight=%d",
			c.SentPkts(), c.DeliveredPkts(), c.LostPkts(), c.SpuriousRetrans(), c.InflightPkts())
	}
}

func TestRTOOnBlackout(t *testing.T) {
	// Link goes permanently dark after 1 s: only the RTO can notice.
	rate, err := netem.NewRateSchedule([]sim.Time{0, sim.Second}, []float64{netem.Mbps(12), 0})
	if err != nil {
		t.Fatal(err)
	}
	fl, _ := runScenario(t, rate, 20*sim.Millisecond, 1<<20, &fixedCC{w: 10}, 10*sim.Second)
	if fl.Conn.RTOCount() == 0 {
		t.Fatal("RTO never fired during blackout")
	}
	if fl.Conn.State() != StateLoss {
		t.Fatalf("state = %v, want Loss", fl.Conn.State())
	}
}

func TestPacingSpacesPackets(t *testing.T) {
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{Rate: netem.FlatRate(netem.Mbps(100)), MinRTT: 20 * sim.Millisecond, Queue: netem.NewDropTail(1 << 22)})
	cc := &fixedCC{w: 1000}
	fl := NewFlow(loop, n, 1, cc, Options{})
	fl.Conn.PacingRate = netem.Mbps(12) / 8 // bytes/sec
	fl.Conn.Start(0)
	loop.RunUntil(2 * sim.Second)
	// Paced at 12 Mb/s = 1000 pkt/s: ~2000 packets in 2 s, far below the
	// 1000-packet window burst the link could otherwise absorb.
	if got := fl.Conn.SentPkts(); got < 1800 || got > 2200 {
		t.Fatalf("sent %d packets, want ~2000 (paced)", got)
	}
}

func TestStopHaltsFlow(t *testing.T) {
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{Rate: netem.FlatRate(netem.Mbps(12)), MinRTT: 20 * sim.Millisecond, Queue: netem.NewDropTail(1 << 20)})
	fl := NewFlow(loop, n, 1, &fixedCC{w: 10}, Options{})
	fl.Conn.Start(0)
	loop.RunUntil(sim.Second)
	fl.Conn.Stop()
	sentAtStop := fl.Conn.SentPkts()
	loop.RunUntil(2 * sim.Second)
	if fl.Conn.SentPkts() != sentAtStop {
		t.Fatal("flow kept sending after Stop")
	}
}

func TestRTTEstimatorRFC6298(t *testing.T) {
	c := &Conn{opt: Options{MinRTO: 200 * sim.Millisecond}, minRTTFilter: NewMinFilter(10 * sim.Second), loop: sim.NewLoop()}
	c.updateRTT(100 * sim.Millisecond)
	if c.srtt != 100*sim.Millisecond || c.rttvar != 50*sim.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", c.srtt, c.rttvar)
	}
	c.updateRTT(200 * sim.Millisecond)
	// srtt = 7/8*100 + 1/8*200 = 112.5ms; rttvar = 3/4*50 + 1/4*100 = 62.5ms
	if c.srtt != 112500 || c.rttvar != 62500 {
		t.Fatalf("second sample: srtt=%v rttvar=%v", c.srtt, c.rttvar)
	}
	if c.rto != c.srtt+4*c.rttvar {
		t.Fatalf("rto = %v", c.rto)
	}
	c.updateRTT(0) // ignored
	if c.lastRTT != 200*sim.Millisecond {
		t.Fatal("zero RTT sample not ignored")
	}
}

func TestWindowedFilter(t *testing.T) {
	f := NewMinFilter(10 * sim.Second)
	f.Update(0, 100)
	f.Update(sim.Second, 50)
	if f.Get() != 50 {
		t.Fatalf("min = %v", f.Get())
	}
	f.Update(2*sim.Second, 80)
	if f.Get() != 50 {
		t.Fatalf("min = %v", f.Get())
	}
	// After the window passes the 50 sample, it must expire.
	f.Update(12*sim.Second+1, 90)
	if f.Get() == 50 {
		t.Fatal("expired sample retained")
	}

	m := NewMaxFilter(sim.Second)
	m.Update(0, 5)
	m.Update(100*sim.Millisecond, 3)
	if m.Get() != 5 {
		t.Fatalf("max = %v", m.Get())
	}
	m.Reset()
	if m.Get() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCAStateString(t *testing.T) {
	if StateOpen.String() != "Open" || StateRecovery.String() != "Recovery" || StateLoss.String() != "Loss" {
		t.Fatal("state names")
	}
	if CAState(9).String() != "unknown" {
		t.Fatal("unknown state name")
	}
}

func TestJitterReorderingHandledByRACK(t *testing.T) {
	// Heavy per-packet jitter reorders deliveries; RACK's reordering window
	// must not declare massive spurious losses, and any spurious marks must
	// be recognized when the "lost" packets' ACKs arrive.
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{
		Rate:   netem.FlatRate(netem.Mbps(24)),
		MinRTT: 40 * sim.Millisecond,
		Queue:  netem.NewDropTail(1 << 22),
		Jitter: 3 * sim.Millisecond,
		Seed:   11,
	})
	fl := NewFlow(loop, n, 1, &fixedCC{w: 40}, Options{})
	fl.Conn.Start(0)
	loop.RunUntil(10 * sim.Second)
	c := fl.Conn
	if c.DeliveredPkts() < 8000 {
		t.Fatalf("delivered only %d", c.DeliveredPkts())
	}
	// Nothing was actually dropped: every "loss" must be spurious, and rare.
	if c.LostPkts() != c.SpuriousRetrans() {
		t.Fatalf("real losses on a lossless path: lost=%d spurious=%d", c.LostPkts(), c.SpuriousRetrans())
	}
	if float64(c.LostPkts()) > 0.02*float64(c.DeliveredPkts()) {
		t.Fatalf("too many spurious marks: %d of %d", c.LostPkts(), c.DeliveredPkts())
	}
}

func TestConnDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		loop := sim.NewLoop()
		n := netem.New(loop, netem.Config{
			Rate:   netem.FlatRate(netem.Mbps(24)),
			MinRTT: 20 * sim.Millisecond,
			Queue:  netem.NewDropTail(20 * netem.MTU),
			Jitter: 2 * sim.Millisecond,
			Seed:   5,
		})
		fl := NewFlow(loop, n, 1, &fixedCC{w: 60}, Options{})
		fl.Conn.Start(0)
		loop.RunUntil(5 * sim.Second)
		return fl.Sink.RxBytes, fl.Conn.LostPkts()
	}
	b1, l1 := run()
	b2, l2 := run()
	if b1 != b2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", b1, l1, b2, l2)
	}
}
