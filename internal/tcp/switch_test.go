package tcp

import (
	"math"
	"testing"

	"sage/internal/netem"
	"sage/internal/sim"
)

// noopCC never touches the window — it exposes exactly what SwitchCC's
// sanitization leaves behind.
type noopCC struct{}

func (noopCC) Name() string                { return "noop" }
func (noopCC) Init(*Conn)                  {}
func (noopCC) OnAck(*Conn, AckEvent)       {}
func (noopCC) OnLoss(*Conn, int, sim.Time) {}
func (noopCC) OnRTO(*Conn, sim.Time)       {}

// aimdCC is a minimal loss-reactive scheme (the cc package's real Reno
// cannot be imported from an internal tcp test without a cycle): additive
// increase per ACK, halve on loss.
type aimdCC struct{}

func (aimdCC) Name() string { return "aimd" }
func (aimdCC) Init(c *Conn) {}
func (aimdCC) OnAck(c *Conn, e AckEvent) {
	if c.State() == StateOpen {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts)/c.Cwnd)
	}
}
func (aimdCC) OnLoss(c *Conn, n int, _ sim.Time) { c.SetCwnd(c.Cwnd / 2) }
func (aimdCC) OnRTO(c *Conn, _ sim.Time)         { c.SetCwnd(2) }

func TestSwitchCCMidFlowKeepsDelivering(t *testing.T) {
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{
		Rate: netem.FlatRate(netem.Mbps(12)), MinRTT: 40 * sim.Millisecond,
		Queue: netem.NewDropTail(1 << 20),
	})
	fl := NewFlow(loop, n, 1, &fixedCC{w: 10}, Options{})
	fl.Conn.Start(0)

	var atSwitch int64
	loop.At(2*sim.Second, func(now sim.Time) {
		atSwitch = fl.Sink.RxBytes
		fl.Conn.SwitchCC(&fixedCC{w: 40}, now) // 40 pkts = the BDP
	})
	loop.RunUntil(5 * sim.Second)

	if fl.Conn.CCSwitches() != 1 {
		t.Fatalf("CCSwitches = %d", fl.Conn.CCSwitches())
	}
	if name := fl.Conn.CC().Name(); name != "fixed" {
		t.Fatalf("CC = %q", name)
	}
	// cwnd 10 → ~3 Mb/s; cwnd 40 saturates the 12 Mb/s link. The 3 s after
	// the switch must deliver far more than the 2 s before it.
	after := fl.Sink.RxBytes - atSwitch
	if atSwitch == 0 || after < 3*atSwitch {
		t.Fatalf("before=%d after=%d bytes: switch did not take effect", atSwitch, after)
	}
	if fl.Conn.RTOCount() != 0 {
		t.Fatalf("handover caused %d RTOs", fl.Conn.RTOCount())
	}
}

func TestSwitchCCSanitizesNaNState(t *testing.T) {
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{
		Rate: netem.FlatRate(netem.Mbps(12)), MinRTT: 20 * sim.Millisecond,
		Queue: netem.NewDropTail(1 << 20),
	})
	fl := NewFlow(loop, n, 1, noopCC{}, Options{})
	c := fl.Conn

	c.SetCwnd(math.NaN())
	c.Ssthresh = math.NaN()
	c.PacingRate = math.Inf(1)
	c.SwitchCC(noopCC{}, 0)

	if math.IsNaN(c.Cwnd) || c.Cwnd != 10 { // default InitCwnd
		t.Fatalf("cwnd = %v after sanitized switch", c.Cwnd)
	}
	if !math.IsInf(c.Ssthresh, 1) {
		t.Fatalf("ssthresh = %v, want +Inf", c.Ssthresh)
	}
	if c.PacingRate != 0 {
		t.Fatalf("pacing rate = %v, want 0", c.PacingRate)
	}
	c.SwitchCC(nil, 0)
	if c.CCSwitches() != 1 {
		t.Fatalf("nil switch counted: %d", c.CCSwitches())
	}
}

func TestReorderWindowAdaptsAfterSpuriousRetransmissions(t *testing.T) {
	// Establish RTT estimates first so the window has real bounds to work in.
	fl, _ := runScenario(t, netem.FlatRate(netem.Mbps(12)), 40*sim.Millisecond, 1<<20, &fixedCC{w: 10}, 2*sim.Second)
	c := fl.Conn

	base := c.ReorderWindow()
	if base < c.MinRTT()/4 {
		t.Fatalf("base window %v below min_rtt/4", base)
	}
	c.onSpurious()
	grown := c.ReorderWindow()
	if grown <= base {
		t.Fatalf("window %v did not grow after spurious retransmission (base %v)", grown, base)
	}
	for i := 0; i < 100; i++ {
		c.onSpurious()
	}
	capped := c.ReorderWindow()
	if capped > c.SRTT() {
		t.Fatalf("window %v exceeds srtt %v", capped, c.SRTT())
	}
}

// TestReorderingPathAvoidsRetransmissionStorm runs a real flow over a
// heavily reordering path: RACK's adaptive window must keep spurious
// retransmissions a small fraction of deliveries while the flow still
// moves traffic.
func TestReorderingPathAvoidsRetransmissionStorm(t *testing.T) {
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{
		Rate: netem.FlatRate(netem.Mbps(12)), MinRTT: 40 * sim.Millisecond,
		Queue:       netem.NewDropTail(1 << 20),
		ReorderProb: 0.2, ReorderDelay: 15 * sim.Millisecond,
		Seed: 9,
	})
	fl := NewFlow(loop, n, 1, aimdCC{}, Options{})
	fl.Conn.Start(0)
	loop.RunUntil(20 * sim.Second)

	c := fl.Conn
	if c.DeliveredPkts() < 1000 {
		t.Fatalf("reordering stalled the flow: %d pkts", c.DeliveredPkts())
	}
	if n.Reordered == 0 {
		t.Fatal("path never reordered")
	}
	// With the adaptive window the spurious-retransmit share stays small.
	if ratio := float64(c.SpuriousRetrans()) / float64(c.DeliveredPkts()); ratio > 0.05 {
		t.Fatalf("spurious retransmission storm: %d/%d (%.1f%%)",
			c.SpuriousRetrans(), c.DeliveredPkts(), ratio*100)
	}
	if c.ReorderWindow() <= c.MinRTT()/4 && c.SpuriousRetrans() > 0 {
		t.Fatal("spurious retransmissions did not widen the RACK window")
	}
}
