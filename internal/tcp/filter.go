package tcp

import "sage/internal/sim"

// WindowedFilter tracks the extremum of a time series over a sliding window,
// in the style of the kernel's windowed min/max filter used by BBR
// (lib/win_minmax.c): three best-so-far samples whose timestamps partition
// the window.
type WindowedFilter struct {
	Window sim.Time
	isMax  bool
	s      [3]filterSample
}

type filterSample struct {
	t sim.Time
	v float64
	// set reports whether the slot holds a real sample.
	set bool
}

// NewMaxFilter returns a windowed maximum filter.
func NewMaxFilter(window sim.Time) *WindowedFilter {
	return &WindowedFilter{Window: window, isMax: true}
}

// NewMinFilter returns a windowed minimum filter.
func NewMinFilter(window sim.Time) *WindowedFilter {
	return &WindowedFilter{Window: window}
}

func (f *WindowedFilter) better(a, b float64) bool {
	if f.isMax {
		return a >= b
	}
	return a <= b
}

// Update inserts a sample and returns the current windowed extremum.
func (f *WindowedFilter) Update(now sim.Time, v float64) float64 {
	ns := filterSample{t: now, v: v, set: true}
	if !f.s[0].set || f.better(v, f.s[0].v) || now-f.s[2].t > f.Window {
		f.s[0], f.s[1], f.s[2] = ns, ns, ns
		return v
	}
	if f.better(v, f.s[1].v) {
		f.s[1], f.s[2] = ns, ns
	} else if f.better(v, f.s[2].v) {
		f.s[2] = ns
	}
	// Expire the best if it has aged out of the window.
	if now-f.s[0].t > f.Window {
		f.s[0], f.s[1] = f.s[1], f.s[2]
		f.s[2] = ns
		if now-f.s[0].t > f.Window {
			f.s[0] = f.s[1]
			f.s[1] = f.s[2]
		}
	}
	return f.s[0].v
}

// Get returns the current extremum (0 if no samples yet).
func (f *WindowedFilter) Get() float64 {
	if !f.s[0].set {
		return 0
	}
	return f.s[0].v
}

// Reset clears all samples.
func (f *WindowedFilter) Reset() { f.s = [3]filterSample{} }
