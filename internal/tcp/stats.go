package tcp

import "sage/internal/sim"

// ConnStats is a point-in-time snapshot of a connection's datapath
// state — the per-flow probe surface the telemetry layer samples each
// GR tick. Taking a snapshot reads plain fields and existing filters;
// it never mutates the connection, so probing cannot perturb a
// deterministic simulation.
type ConnStats struct {
	Cwnd       float64 // congestion window, packets
	Ssthresh   float64 // slow-start threshold, packets (+Inf until first loss)
	PacingRate float64 // bytes/second (0 = pacing off)

	SRTT   sim.Time
	RTTVar sim.Time
	MinRTT sim.Time // windowed (10 s) minimum

	InflightPkts int
	SentPkts     int64
	DeliveredB   int64 // cumulative acknowledged bytes
	LostPkts     int64
	Spurious     int64 // lost-then-ACKed packets
	RTOs         int64 // retransmission timeouts fired
	Recoveries   int64 // fast-recovery entries
	ECEPkts      int64

	DeliveryRate float64 // latest sample, bytes/second
	State        CAState
}

// Stats snapshots the connection.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		Cwnd:         c.Cwnd,
		Ssthresh:     c.Ssthresh,
		PacingRate:   c.PacingRate,
		SRTT:         c.srtt,
		RTTVar:       c.rttvar,
		MinRTT:       c.MinRTT(),
		InflightPkts: c.inflightCnt,
		SentPkts:     c.sentPkts,
		DeliveredB:   c.delivered,
		LostPkts:     c.lostPkts,
		Spurious:     c.spurious,
		RTOs:         c.rtoCount,
		Recoveries:   c.enterRecoveryCnt,
		ECEPkts:      c.ecePkts,
		DeliveryRate: c.deliveryRate,
		State:        c.state,
	}
}
