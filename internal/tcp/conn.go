package tcp

import (
	"math"

	"sage/internal/netem"
	"sage/internal/sim"
)

// Options tunes a connection's datapath constants.
type Options struct {
	MSS        int      // packet size in bytes (default netem.MTU)
	InitCwnd   float64  // initial congestion window in packets (default 10)
	MinRTO     sim.Time // lower bound on the retransmission timer (default 200 ms)
	MaxCwnd    float64  // safety cap on cwnd in packets (default 20000)
	ReorderWnd sim.Time // RACK reordering window floor (default 1 ms)
	DelAck     bool     // delayed acknowledgments at the receiver
}

func (o *Options) fill() {
	if o.MSS == 0 {
		o.MSS = netem.MTU
	}
	if o.InitCwnd == 0 {
		o.InitCwnd = 10
	}
	if o.MinRTO == 0 {
		o.MinRTO = 200 * sim.Millisecond
	}
	if o.MaxCwnd == 0 {
		o.MaxCwnd = 20000
	}
	if o.ReorderWnd == 0 {
		o.ReorderWnd = sim.Millisecond
	}
}

// txRecord tracks one in-flight packet.
type txRecord struct {
	seq             int64
	sentAt          sim.Time
	size            int
	deliveredAtSend int64 // connection's delivered bytes when this was sent
	acked           bool
	lost            bool
}

func (r *txRecord) resolved() bool { return r.acked || r.lost }

// ackItem acknowledges one data packet.
type ackItem struct {
	Seq    int64
	SentAt sim.Time
	ECE    bool // congestion-experienced echo (ECN)
}

// ackInfo is the payload the Sink returns on the reverse path. With delayed
// ACKs enabled a single ACK packet acknowledges several data packets — the
// "Ack accumulation" the paper's emulation captures.
type ackInfo struct {
	Items []ackItem
}

// Conn is a backlogged ("iperf-style") sender: it always has data and sends
// whenever the congestion window (and pacing, if enabled) permits.
type Conn struct {
	ID   int
	loop *sim.Loop
	net  *netem.Network
	cc   CongestionControl
	opt  Options

	// Congestion state, mutated by the CC module.
	Cwnd       float64 // packets
	Ssthresh   float64 // packets
	PacingRate float64 // bytes/second; 0 disables pacing

	nextSeq     int64
	pending     map[int64]*txRecord
	order       []*txRecord // send order; head advances past resolved records
	head        int
	inflightCnt int

	srtt, rttvar     sim.Time
	lastRTT          sim.Time
	minRTTFilter     *WindowedFilter
	baseRTT          sim.Time // all-time minimum
	rto              sim.Time
	rtoBackoff       int
	rtoTimer         sim.Handle
	rackTimer        sim.Handle
	lastAckedSentAt  sim.Time
	rackRTT          sim.Time
	delivered        int64 // bytes acknowledged
	deliveredPkts    int64
	sentPkts         int64
	lostPkts         int64
	spurious         int64
	deliveryRate     float64 // latest sample, bytes/second
	maxRateFilter    *WindowedFilter
	state            CAState
	recoveryEnd      int64 // recovery ends when every seq <= recoveryEnd resolves
	lossEpisodeLoss  int
	nextSendAt       sim.Time
	paceTimer        sim.Handle
	running          bool
	stopped          bool
	enterRecoveryCnt int64
	rtoCount         int64
	ecnEnabled       bool
	ecePkts          int64
	reoSteps         int // adaptive RACK reorder-window multiplier (starts at 1)
	ccSwitches       int64
}

// NewConn builds a connection for flow id over n, controlled by cc.
// Call Start to begin transmission; the caller must also attach a Sink for
// the flow's data path (see Attach helpers in this package).
func NewConn(loop *sim.Loop, n *netem.Network, id int, cc CongestionControl, opt Options) *Conn {
	opt.fill()
	c := &Conn{
		ID:            id,
		loop:          loop,
		net:           n,
		cc:            cc,
		opt:           opt,
		Cwnd:          opt.InitCwnd,
		Ssthresh:      math.Inf(1),
		pending:       make(map[int64]*txRecord),
		minRTTFilter:  NewMinFilter(10 * sim.Second),
		maxRateFilter: NewMaxFilter(10 * sim.Second),
		rto:           sim.Second,
	}
	return c
}

// Start begins transmission at the loop's next opportunity.
func (c *Conn) Start(now sim.Time) {
	if c.running {
		return
	}
	c.running = true
	c.cc.Init(c)
	c.trySend(now)
}

// Stop halts transmission and cancels timers.
func (c *Conn) Stop() {
	c.stopped = true
	c.rtoTimer.Cancel()
	c.rackTimer.Cancel()
	c.paceTimer.Cancel()
}

// CC returns the connection's congestion-control module.
func (c *Conn) CC() CongestionControl { return c.cc }

// SwitchCC replaces the congestion-control module at runtime — the
// equivalent of setsockopt(TCP_CONGESTION) on a live socket, and the
// mechanism the runtime guardian uses to move a connection between a
// misbehaving policy and its heuristic fallback. The new module is
// Init'ed and inherits the connection's current window, so the handover
// is seamless; non-finite congestion state left behind by a broken
// controller (NaN cwnd/ssthresh/pacing) is sanitized first so the new
// module starts from a workable window.
func (c *Conn) SwitchCC(newCC CongestionControl, now sim.Time) {
	if newCC == nil {
		return
	}
	if math.IsNaN(c.Cwnd) || math.IsInf(c.Cwnd, 0) {
		c.Cwnd = c.opt.InitCwnd
	}
	if math.IsNaN(c.Ssthresh) {
		c.Ssthresh = math.Inf(1)
	}
	if math.IsNaN(c.PacingRate) || math.IsInf(c.PacingRate, 0) {
		c.PacingRate = 0
	}
	c.cc = newCC
	c.ccSwitches++
	newCC.Init(c)
	if c.running && !c.stopped {
		c.trySend(now)
	}
}

// CCSwitches returns how many times the CC module was swapped at runtime.
func (c *Conn) CCSwitches() int64 { return c.ccSwitches }

// MSS returns the packet size in bytes.
func (c *Conn) MSS() int { return c.opt.MSS }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// RTTVar returns the RTT variance estimate.
func (c *Conn) RTTVar() sim.Time { return c.rttvar }

// LastRTT returns the most recent raw RTT sample.
func (c *Conn) LastRTT() sim.Time { return c.lastRTT }

// MinRTT returns the windowed (10 s) minimum RTT.
func (c *Conn) MinRTT() sim.Time { return sim.Time(c.minRTTFilter.Get()) }

// BaseRTT returns the all-time minimum RTT.
func (c *Conn) BaseRTT() sim.Time { return c.baseRTT }

// Delivered returns cumulative acknowledged bytes.
func (c *Conn) Delivered() int64 { return c.delivered }

// DeliveredPkts returns cumulative acknowledged packets.
func (c *Conn) DeliveredPkts() int64 { return c.deliveredPkts }

// SentPkts returns cumulative transmitted packets.
func (c *Conn) SentPkts() int64 { return c.sentPkts }

// LostPkts returns cumulative packets declared lost.
func (c *Conn) LostPkts() int64 { return c.lostPkts }

// SpuriousRetrans returns packets declared lost whose ACK later arrived.
func (c *Conn) SpuriousRetrans() int64 { return c.spurious }

// DeliveryRate returns the most recent delivery-rate sample in bytes/second.
func (c *Conn) DeliveryRate() float64 { return c.deliveryRate }

// MaxDeliveryRate returns the windowed (10 s) maximum delivery rate.
func (c *Conn) MaxDeliveryRate() float64 { return c.maxRateFilter.Get() }

// InflightPkts returns the number of unresolved packets in flight.
func (c *Conn) InflightPkts() int { return c.inflightCnt }

// InflightBytes returns the bytes in flight.
func (c *Conn) InflightBytes() int { return c.inflightCnt * c.opt.MSS }

// State returns the congestion-avoidance machine state.
func (c *Conn) State() CAState { return c.state }

// RecoveryEpisodes returns how many times fast recovery was entered.
func (c *Conn) RecoveryEpisodes() int64 { return c.enterRecoveryCnt }

// RTOCount returns how many retransmission timeouts fired.
func (c *Conn) RTOCount() int64 { return c.rtoCount }

// EnableECN makes the sender mark its packets ECN-capable, so marking AQMs
// signal congestion without dropping. CC modules (DCTCP) call this in Init.
func (c *Conn) EnableECN() { c.ecnEnabled = true }

// ECEPkts returns the cumulative count of congestion-experienced echoes.
func (c *Conn) ECEPkts() int64 { return c.ecePkts }

// SetCwnd clamps and applies a new congestion window.
func (c *Conn) SetCwnd(w float64) {
	if w < 1 {
		w = 1
	}
	if w > c.opt.MaxCwnd {
		w = c.opt.MaxCwnd
	}
	c.Cwnd = w
}

// Kick re-evaluates the send gate; CC modules call it after raising cwnd or
// the pacing rate outside an ACK context.
func (c *Conn) Kick(now sim.Time) { c.trySend(now) }

// Receive implements netem.Receiver for the reverse (ACK) path.
func (c *Conn) Receive(p *netem.Packet, now sim.Time) {
	ai, ok := p.Payload.(*ackInfo)
	if !ok || c.stopped {
		return
	}
	c.handleAck(ai, now)
}

func (c *Conn) handleAck(ai *ackInfo, now sim.Time) {
	var newest *txRecord
	acked := 0
	ece := false
	for _, it := range ai.Items {
		rec, ok := c.pending[it.Seq]
		if !ok {
			continue
		}
		delete(c.pending, it.Seq)
		if rec.lost {
			// The packet was declared lost but arrived after all: spurious.
			c.spurious++
			c.onSpurious()
			rec.acked = true
			c.delivered += int64(rec.size)
			c.deliveredPkts++
			continue
		}
		rec.acked = true
		c.inflightCnt--
		c.delivered += int64(rec.size)
		c.deliveredPkts++
		acked++
		if it.ECE {
			c.ecePkts++
			ece = true
		}
		if newest == nil || rec.sentAt > newest.sentAt {
			newest = rec
		}
	}
	if newest == nil {
		return
	}
	rec := newest
	rtt := now - rec.sentAt
	c.updateRTT(rtt)
	c.rtoBackoff = 0

	// Delivery-rate sample (BBR-style: bytes delivered since this packet
	// left, over the time it spent in flight).
	if elapsed := now - rec.sentAt; elapsed > 0 {
		c.deliveryRate = float64(c.delivered-rec.deliveredAtSend) / elapsed.Seconds()
		c.maxRateFilter.Update(now, c.deliveryRate)
	}
	if rec.sentAt > c.lastAckedSentAt {
		c.lastAckedSentAt = rec.sentAt
		c.rackRTT = rtt
	}

	newLost := c.rackDetect(now)
	c.advanceHead()
	c.maybeExitRecovery()
	if newLost > 0 && c.state == StateOpen {
		c.enterRecovery(now, newLost)
	}

	ev := AckEvent{
		Now:          now,
		AckedPkts:    acked,
		RTT:          rtt,
		SRTT:         c.srtt,
		MinRTT:       c.MinRTT(),
		DeliveryRate: c.deliveryRate,
		Inflight:     c.inflightCnt,
		State:        c.state,
		ECE:          ece,
	}
	if acked > 0 {
		c.cc.OnAck(c, ev)
	}
	c.resetRTO(now)
	c.trySend(now)
}

func (c *Conn) updateRTT(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	c.lastRTT = rtt
	c.minRTTFilter.Update(c.loop.Now(), float64(rtt))
	if c.baseRTT == 0 || rtt < c.baseRTT {
		c.baseRTT = rtt
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		diff := c.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.opt.MinRTO {
		c.rto = c.opt.MinRTO
	}
	if c.rto > 60*sim.Second {
		c.rto = 60 * sim.Second
	}
}

// reorderWnd returns the RACK reordering window. Like Linux's RACK
// (RFC 8985 §7.1), the window adapts: every spurious retransmission —
// proof the path reorders more than the current window tolerates — grows
// it by another min_rtt/4 step, capped at the smoothed RTT, so sustained
// reordering stops triggering retransmission storms instead of being
// re-mistaken for loss every round.
func (c *Conn) reorderWnd() sim.Time {
	steps := c.reoSteps
	if steps < 1 {
		steps = 1
	}
	w := c.MinRTT() / 4 * sim.Time(steps)
	if c.srtt > 0 && w > c.srtt {
		w = c.srtt
	}
	if w < c.opt.ReorderWnd {
		w = c.opt.ReorderWnd
	}
	return w
}

// ReorderWindow exposes the current adaptive RACK window (for tests and
// telemetry).
func (c *Conn) ReorderWindow() sim.Time { return c.reorderWnd() }

const maxReoSteps = 16

// onSpurious widens the adaptive reorder window after a packet declared
// lost turns out to have been merely reordered.
func (c *Conn) onSpurious() {
	if c.reoSteps < 1 {
		c.reoSteps = 1
	}
	if c.reoSteps < maxReoSteps {
		c.reoSteps++
	}
}

// rackDetect marks as lost every unresolved packet sent before the most
// recently delivered one whose RACK deadline has passed, and arms a timer
// for the earliest pending deadline. It returns how many packets it marked.
func (c *Conn) rackDetect(now sim.Time) int {
	if c.lastAckedSentAt == 0 {
		return 0
	}
	reorder := c.reorderWnd()
	marked := 0
	var earliest sim.Time
	for i := c.head; i < len(c.order); i++ {
		r := c.order[i]
		if r.resolved() {
			continue
		}
		if r.sentAt >= c.lastAckedSentAt {
			break // sent after the newest delivered packet: not suspect
		}
		deadline := r.sentAt + c.rackRTT + reorder
		if now >= deadline {
			c.markLost(r)
			marked++
		} else if earliest == 0 || deadline < earliest {
			earliest = deadline
		}
	}
	c.rackTimer.Cancel()
	if earliest > 0 {
		c.rackTimer = c.loop.At(earliest, c.onRackTimer)
	}
	return marked
}

func (c *Conn) onRackTimer(now sim.Time) {
	if c.stopped {
		return
	}
	newLost := c.rackDetect(now)
	c.advanceHead()
	c.maybeExitRecovery()
	if newLost > 0 && c.state == StateOpen {
		c.enterRecovery(now, newLost)
	}
	if newLost > 0 {
		c.trySend(now)
	}
}

func (c *Conn) markLost(r *txRecord) {
	r.lost = true
	c.lostPkts++
	c.inflightCnt--
	c.lossEpisodeLoss++
}

func (c *Conn) advanceHead() {
	for c.head < len(c.order) && c.order[c.head].resolved() {
		c.order[c.head] = nil
		c.head++
	}
	// Periodically compact so the slice doesn't grow without bound.
	if c.head > 4096 && c.head > len(c.order)/2 {
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
}

func (c *Conn) enterRecovery(now sim.Time, lost int) {
	c.state = StateRecovery
	c.recoveryEnd = c.nextSeq - 1
	c.enterRecoveryCnt++
	c.lossEpisodeLoss = lost
	c.cc.OnLoss(c, lost, now)
}

func (c *Conn) maybeExitRecovery() {
	if c.state == StateOpen {
		return
	}
	if c.head < len(c.order) && c.order[c.head].seq <= c.recoveryEnd {
		return // still packets from the loss episode outstanding
	}
	c.state = StateOpen
	c.lossEpisodeLoss = 0
}

func (c *Conn) resetRTO(now sim.Time) {
	c.rtoTimer.Cancel()
	if c.inflightCnt == 0 || c.stopped {
		return
	}
	d := c.rto << c.rtoBackoff
	if d > 60*sim.Second {
		d = 60 * sim.Second
	}
	c.rtoTimer = c.loop.At(now+d, c.onRTO)
}

func (c *Conn) onRTO(now sim.Time) {
	if c.stopped || c.inflightCnt == 0 {
		return
	}
	c.rtoCount++
	c.state = StateLoss
	c.recoveryEnd = c.nextSeq - 1
	// Everything in flight is presumed lost.
	lost := 0
	for i := c.head; i < len(c.order); i++ {
		r := c.order[i]
		if !r.resolved() {
			c.markLost(r)
			lost++
		}
	}
	c.advanceHead()
	c.rtoBackoff++
	if c.rtoBackoff > 8 {
		c.rtoBackoff = 8
	}
	c.cc.OnRTO(c, now)
	if c.Cwnd < 1 {
		c.Cwnd = 1
	}
	c.resetRTO(now)
	c.trySend(now)
}

// trySend transmits as long as the window (and pacing schedule) allows.
func (c *Conn) trySend(now sim.Time) {
	if !c.running || c.stopped {
		return
	}
	for float64(c.inflightCnt) < c.Cwnd {
		if c.PacingRate > 0 && now < c.nextSendAt {
			if !c.paceTimer.Pending() {
				c.paceTimer = c.loop.At(c.nextSendAt, func(t sim.Time) { c.trySend(t) })
			}
			return
		}
		c.sendPacket(now)
		if c.PacingRate > 0 {
			gap := sim.Time(float64(c.opt.MSS) / c.PacingRate * float64(sim.Second))
			if gap < 1 {
				gap = 1
			}
			if c.nextSendAt < now {
				c.nextSendAt = now
			}
			c.nextSendAt += gap
		}
	}
}

func (c *Conn) sendPacket(now sim.Time) {
	seq := c.nextSeq
	c.nextSeq++
	rec := &txRecord{
		seq:             seq,
		sentAt:          now,
		size:            c.opt.MSS,
		deliveredAtSend: c.delivered,
	}
	c.pending[seq] = rec
	c.order = append(c.order, rec)
	c.inflightCnt++
	c.sentPkts++
	p := &netem.Packet{FlowID: c.ID, Seq: seq, Size: c.opt.MSS, Sent: now, ECT: c.ecnEnabled}
	c.net.SendData(p, now)
	if !c.rtoTimer.Pending() {
		c.resetRTO(now)
	}
}
