package rollout

import (
	"context"

	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

// FlowSpec describes one flow of a multi-flow run: its congestion control
// (or controller over TCP Pure), when it joins, and when it leaves
// (0 = runs to the end).
type FlowSpec struct {
	Name       string
	CC         tcp.CongestionControl
	Controller Controller // optional; requires a GR monitor per flow
	Start      sim.Time
	Stop       sim.Time
}

// FlowResult reports one flow's outcome.
type FlowResult struct {
	Name          string
	ThroughputBps float64 // over the flow's own active window
	AvgOWD        sim.Time
	Series        []Sample // per SamplePeriod, throughput over the period
	// Interrupted reports that MultiOptions.Ctx was cancelled mid-run: the
	// aggregates cover only the simulated window that actually ran.
	Interrupted bool
}

// MultiOptions tunes a multi-flow run.
type MultiOptions struct {
	GR           gr.Config
	SamplePeriod sim.Time
	TCP          tcp.Options
	// Trace, when non-nil, receives one telemetry.FlowSample per GR tick
	// for every controller-driven flow (distinguished by the Flow field) —
	// the multi-flow counterpart of Options.Trace.
	Trace *telemetry.FlowTrace
	// Ctx, when non-nil, is polled once per GR interval; cancellation stops
	// the simulation early and marks every FlowResult Interrupted, matching
	// Run's drain semantics.
	Ctx context.Context
}

// RunMulti runs an arbitrary set of flows over one scenario's bottleneck —
// the harness behind the fairness (Fig. 18/27) and TCP-friendliness
// (Fig. 19/28) experiments, where several flows join and leave on a
// schedule and each flow's throughput trajectory matters.
func RunMulti(sc netem.Scenario, flows []FlowSpec, opt MultiOptions) []FlowResult {
	opt.GR = opt.GR.Fill()
	loop := sim.NewLoop()
	n := sc.Build(loop)

	type state struct {
		spec    FlowSpec
		flow    *tcp.Flow
		mon     *gr.Monitor
		prevRx  int64
		prevAt  sim.Time
		started bool
	}
	states := make([]*state, len(flows))
	for i, spec := range flows {
		fl := tcp.NewFlow(loop, n, i+1, spec.CC, opt.TCP)
		st := &state{spec: spec, flow: fl}
		if spec.Controller != nil {
			st.mon = gr.NewMonitor(opt.GR, fl.Conn, gr.RewardContext{
				Kind:     gr.RewardSingleFlow,
				Capacity: sc.Rate.At,
				MinRTT:   sc.MinRTT,
			})
		}
		states[i] = st
		start := spec.Start
		loop.At(start, func(t sim.Time) {
			st.flow.Conn.Start(t)
			st.started = true
			st.prevAt = t
		})
		if spec.Stop > 0 {
			loop.At(spec.Stop, func(t sim.Time) { st.flow.Conn.Stop() })
		}
	}

	// Several flows may share one batching controller (serve.Controller);
	// flush each distinct flusher once per interval, after every flow has
	// enqueued its decision.
	flushers := make(map[BatchFlusher]bool)
	for _, spec := range flows {
		if bf, ok := spec.Controller.(BatchFlusher); ok {
			flushers[bf] = true
		}
	}
	flushOrder := make([]BatchFlusher, 0, len(flushers))
	for _, spec := range flows {
		if bf, ok := spec.Controller.(BatchFlusher); ok && flushers[bf] {
			flushers[bf] = false
			flushOrder = append(flushOrder, bf)
		}
	}

	interval := opt.GR.Interval
	nextSample := opt.SamplePeriod
	results := make([]FlowResult, len(flows))
	for i := range results {
		results[i].Name = flows[i].Name
	}
	for now := interval; now <= sc.Duration; now += interval {
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			for i := range results {
				results[i].Interrupted = true
			}
			break
		}
		loop.RunUntil(now)
		for _, st := range states {
			if !st.started || (st.spec.Stop > 0 && now > st.spec.Stop) {
				continue
			}
			if st.mon != nil {
				step := st.mon.Tick(now)
				st.spec.Controller.Control(now, st.flow.Conn, step.State)
				if _, ok := st.spec.Controller.(BatchFlusher); !ok {
					// Batching controllers apply + kick in their flush;
					// kicking here would send at the pre-decision window.
					st.flow.Conn.Kick(now)
				}
				if opt.Trace != nil {
					cs := st.flow.Conn.Stats()
					q := n.Link.Queue()
					opt.Trace.Record(telemetry.FlowSample{
						AtUs:         int64(now),
						Flow:         st.flow.Conn.ID,
						Cwnd:         cs.Cwnd,
						SRTTMs:       cs.SRTT.Millis(),
						RTTVarMs:     cs.RTTVar.Millis(),
						InflightPkts: cs.InflightPkts,
						DeliveryBps:  cs.DeliveryRate * 8,
						LostPkts:     cs.LostPkts,
						Retrans:      cs.RTOs,
						Recoveries:   cs.Recoveries,
						QueuePkts:    q.Len(),
						QueueBytes:   q.Bytes(),
						Action:       step.Action,
						Reward:       step.Reward,
					})
				}
			}
		}
		for _, bf := range flushOrder {
			bf.FlushBatch(now)
		}
		if opt.SamplePeriod > 0 && now >= nextSample {
			for i, st := range states {
				rx, _, _ := st.flow.Sink.Totals()
				span := (now - st.prevAt).Seconds()
				thr := 0.0
				if span > 0 {
					thr = float64(rx-st.prevRx) * 8 / span
				}
				results[i].Series = append(results[i].Series, Sample{
					At:     now,
					ThrBps: thr,
					Cwnd:   st.flow.Conn.Cwnd,
					OWD:    st.flow.Sink.OWDAvg(),
					SRTT:   st.flow.Conn.SRTT(),
				})
				st.prevRx, st.prevAt = rx, now
			}
			nextSample += opt.SamplePeriod
		}
	}
	for i, st := range states {
		stop := st.spec.Stop
		if stop == 0 || stop > sc.Duration {
			stop = sc.Duration
		}
		window := (stop - st.spec.Start).Seconds()
		rx, pkts, owdSum := st.flow.Sink.Totals()
		if window > 0 {
			results[i].ThroughputBps = float64(rx) * 8 / window
		}
		if pkts > 0 {
			results[i].AvgOWD = owdSum / sim.Time(pkts)
		}
	}
	return results
}
