package rollout

import (
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// FlowSpec describes one flow of a multi-flow run: its congestion control
// (or controller over TCP Pure), when it joins, and when it leaves
// (0 = runs to the end).
type FlowSpec struct {
	Name       string
	CC         tcp.CongestionControl
	Controller Controller // optional; requires a GR monitor per flow
	Start      sim.Time
	Stop       sim.Time
}

// FlowResult reports one flow's outcome.
type FlowResult struct {
	Name          string
	ThroughputBps float64 // over the flow's own active window
	AvgOWD        sim.Time
	Series        []Sample // per SamplePeriod, throughput over the period
}

// MultiOptions tunes a multi-flow run.
type MultiOptions struct {
	GR           gr.Config
	SamplePeriod sim.Time
	TCP          tcp.Options
}

// RunMulti runs an arbitrary set of flows over one scenario's bottleneck —
// the harness behind the fairness (Fig. 18/27) and TCP-friendliness
// (Fig. 19/28) experiments, where several flows join and leave on a
// schedule and each flow's throughput trajectory matters.
func RunMulti(sc netem.Scenario, flows []FlowSpec, opt MultiOptions) []FlowResult {
	opt.GR = opt.GR.Fill()
	loop := sim.NewLoop()
	n := sc.Build(loop)

	type state struct {
		spec    FlowSpec
		flow    *tcp.Flow
		mon     *gr.Monitor
		prevRx  int64
		prevAt  sim.Time
		started bool
	}
	states := make([]*state, len(flows))
	for i, spec := range flows {
		fl := tcp.NewFlow(loop, n, i+1, spec.CC, opt.TCP)
		st := &state{spec: spec, flow: fl}
		if spec.Controller != nil {
			st.mon = gr.NewMonitor(opt.GR, fl.Conn, gr.RewardContext{
				Kind:     gr.RewardSingleFlow,
				Capacity: sc.Rate.At,
				MinRTT:   sc.MinRTT,
			})
		}
		states[i] = st
		start := spec.Start
		loop.At(start, func(t sim.Time) {
			st.flow.Conn.Start(t)
			st.started = true
			st.prevAt = t
		})
		if spec.Stop > 0 {
			loop.At(spec.Stop, func(t sim.Time) { st.flow.Conn.Stop() })
		}
	}

	interval := opt.GR.Interval
	nextSample := opt.SamplePeriod
	results := make([]FlowResult, len(flows))
	for i := range results {
		results[i].Name = flows[i].Name
	}
	for now := interval; now <= sc.Duration; now += interval {
		loop.RunUntil(now)
		for _, st := range states {
			if !st.started || (st.spec.Stop > 0 && now > st.spec.Stop) {
				continue
			}
			if st.mon != nil {
				step := st.mon.Tick(now)
				st.spec.Controller.Control(now, st.flow.Conn, step.State)
				st.flow.Conn.Kick(now)
			}
		}
		if opt.SamplePeriod > 0 && now >= nextSample {
			for i, st := range states {
				rx, _, _ := st.flow.Sink.Totals()
				span := (now - st.prevAt).Seconds()
				thr := 0.0
				if span > 0 {
					thr = float64(rx-st.prevRx) * 8 / span
				}
				results[i].Series = append(results[i].Series, Sample{
					At:     now,
					ThrBps: thr,
					Cwnd:   st.flow.Conn.Cwnd,
					OWD:    st.flow.Sink.OWDAvg(),
					SRTT:   st.flow.Conn.SRTT(),
				})
				st.prevRx, st.prevAt = rx, now
			}
			nextSample += opt.SamplePeriod
		}
	}
	for i, st := range states {
		stop := st.spec.Stop
		if stop == 0 || stop > sc.Duration {
			stop = sc.Duration
		}
		window := (stop - st.spec.Start).Seconds()
		rx, pkts, owdSum := st.flow.Sink.Totals()
		if window > 0 {
			results[i].ThroughputBps = float64(rx) * 8 / window
		}
		if pkts > 0 {
			results[i].AvgOWD = owdSum / sim.Time(pkts)
		}
	}
	return results
}
