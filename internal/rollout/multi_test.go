package rollout

import (
	"context"
	"testing"

	"sage/internal/cc"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

func TestRunMultiStaggeredShares(t *testing.T) {
	mrtt := 40 * sim.Millisecond
	sc := netem.Scenario{
		Name:       "multi",
		Rate:       netem.FlatRate(netem.Mbps(48)),
		MinRTT:     mrtt,
		QueueBytes: netem.BDPBytes(netem.Mbps(48), mrtt),
		Duration:   30 * sim.Second,
	}
	specs := []FlowSpec{
		{Name: "a", CC: cc.MustNew("cubic"), Start: 0},
		{Name: "b", CC: cc.MustNew("cubic"), Start: 10 * sim.Second},
	}
	res := RunMulti(sc, specs, MultiOptions{SamplePeriod: 2 * sim.Second})
	if len(res) != 2 {
		t.Fatalf("flows = %d", len(res))
	}
	if res[0].Name != "a" || res[1].Name != "b" {
		t.Fatal("names")
	}
	// Flow a alone for 10 s: its early samples near capacity; after b joins
	// the final-window shares should be roughly even.
	if len(res[0].Series) < 10 {
		t.Fatalf("series = %d", len(res[0].Series))
	}
	early := res[0].Series[3].ThrBps // t = 8 s
	if early < 0.7*48e6 {
		t.Fatalf("flow a early %v Mb/s, want near capacity", early/1e6)
	}
	lastA := res[0].Series[len(res[0].Series)-1].ThrBps
	lastB := res[1].Series[len(res[1].Series)-1].ThrBps
	if lastA+lastB < 0.7*48e6 {
		t.Fatalf("aggregate final %v Mb/s", (lastA+lastB)/1e6)
	}
	ratio := lastA / lastB
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("final share ratio %v", ratio)
	}
	// Whole-run throughput accounted per flow's own active window.
	if res[1].ThroughputBps <= 0 || res[0].ThroughputBps <= 0 {
		t.Fatal("missing throughput")
	}
}

func TestRunMultiStopSchedule(t *testing.T) {
	sc := netem.Scenario{
		Name:       "stop",
		Rate:       netem.FlatRate(netem.Mbps(24)),
		MinRTT:     20 * sim.Millisecond,
		QueueBytes: 1 << 20,
		Duration:   10 * sim.Second,
	}
	specs := []FlowSpec{
		{Name: "short", CC: cc.MustNew("cubic"), Start: 0, Stop: 3 * sim.Second},
		{Name: "long", CC: cc.MustNew("cubic"), Start: 0},
	}
	res := RunMulti(sc, specs, MultiOptions{SamplePeriod: sim.Second})
	// The short flow's throughput is averaged over its own 3 s window.
	if res[0].ThroughputBps <= 0 {
		t.Fatal("short flow unaccounted")
	}
	// After the short flow leaves, the long flow takes the link: its last
	// sample should be near capacity.
	last := res[1].Series[len(res[1].Series)-1].ThrBps
	if last < 0.8*24e6 {
		t.Fatalf("long flow final %v Mb/s", last/1e6)
	}
}

func TestRunMultiControllerFlows(t *testing.T) {
	sc := netem.Scenario{
		Name:       "ctl",
		Rate:       netem.FlatRate(netem.Mbps(24)),
		MinRTT:     20 * sim.Millisecond,
		QueueBytes: 1 << 20,
		Duration:   5 * sim.Second,
	}
	pin := &ctrlHalf{w: 20}
	specs := []FlowSpec{
		{Name: "pinned", CC: cc.MustNew("pure"), Controller: pin, Start: 0},
	}
	res := RunMulti(sc, specs, MultiOptions{})
	// cwnd pinned at 20 over a 40-packet BDP: about half utilization.
	util := res[0].ThroughputBps / 24e6
	if util < 0.3 || util > 0.7 {
		t.Fatalf("pinned util %.2f", util)
	}
}

// Guard: RunMulti must keep per-flow GR monitors independent.
func TestRunMultiIndependentMonitors(t *testing.T) {
	sc := netem.Scenario{
		Name:       "mon",
		Rate:       netem.FlatRate(netem.Mbps(24)),
		MinRTT:     20 * sim.Millisecond,
		QueueBytes: 1 << 20,
		Duration:   3 * sim.Second,
	}
	var aCwnd, bCwnd []float64
	mk := func(dst *[]float64, w float64) Controller {
		return ctrlRecord{dst: dst, w: w}
	}
	specs := []FlowSpec{
		{Name: "a", CC: cc.MustNew("pure"), Controller: mk(&aCwnd, 5), Start: 0},
		{Name: "b", CC: cc.MustNew("pure"), Controller: mk(&bCwnd, 50), Start: 0},
	}
	RunMulti(sc, specs, MultiOptions{})
	if len(aCwnd) == 0 || len(bCwnd) == 0 {
		t.Fatal("controllers not driven")
	}
}

type ctrlRecord struct {
	dst *[]float64
	w   float64
}

func (c ctrlRecord) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	conn.SetCwnd(c.w)
	*c.dst = append(*c.dst, conn.Cwnd)
}

// Ctx cancellation must stop a multi-flow run early and mark every
// result, matching Run's drain semantics.
func TestRunMultiCtxCancel(t *testing.T) {
	sc := netem.Scenario{
		Name:       "cancel",
		Rate:       netem.FlatRate(netem.Mbps(24)),
		MinRTT:     20 * sim.Millisecond,
		QueueBytes: 1 << 20,
		Duration:   30 * sim.Second,
	}
	specs := []FlowSpec{
		{Name: "a", CC: cc.MustNew("cubic"), Start: 0},
		{Name: "b", CC: cc.MustNew("cubic"), Start: 0},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first interval: nothing should run
	res := RunMulti(sc, specs, MultiOptions{Ctx: ctx})
	for i, r := range res {
		if !r.Interrupted {
			t.Errorf("flow %d not marked Interrupted", i)
		}
		if r.ThroughputBps != 0 {
			t.Errorf("flow %d moved data after cancellation: %v bps", i, r.ThroughputBps)
		}
	}
}

// Trace must receive per-tick samples for every controller-driven flow.
func TestRunMultiTrace(t *testing.T) {
	sc := netem.Scenario{
		Name:       "trace",
		Rate:       netem.FlatRate(netem.Mbps(24)),
		MinRTT:     20 * sim.Millisecond,
		QueueBytes: 1 << 20,
		Duration:   2 * sim.Second,
	}
	specs := []FlowSpec{
		{Name: "ctl", CC: cc.MustNew("pure"), Controller: &ctrlHalf{w: 20}, Start: 0},
		{Name: "bg", CC: cc.MustNew("cubic"), Start: 0},
	}
	tr := telemetry.NewFlowTrace(0)
	res := RunMulti(sc, specs, MultiOptions{Trace: tr})
	if res[0].ThroughputBps <= 0 {
		t.Fatal("controlled flow moved no data")
	}
	if tr.Len() == 0 {
		t.Fatal("trace recorded no samples")
	}
	for _, s := range tr.Samples() {
		if s.Flow != 1 {
			t.Fatalf("trace recorded flow %d; only the controller-driven flow (1) should appear", s.Flow)
		}
		if s.Cwnd <= 0 {
			t.Fatalf("sample with non-positive cwnd: %+v", s)
		}
	}
}
