package rollout

import (
	"testing"

	"sage/internal/cc"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

func flatScenario(bwMbps, rttMs float64, bdp float64, dur sim.Time) netem.Scenario {
	rate := netem.FlatRate(netem.Mbps(bwMbps))
	mrtt := sim.FromMillis(rttMs)
	return netem.Scenario{
		Name:       "test-flat",
		Rate:       rate,
		MinRTT:     mrtt,
		QueueBytes: int(float64(netem.BDPBytes(rate.At(0), mrtt)) * bdp),
		Duration:   dur,
	}
}

func TestRunSingleFlow(t *testing.T) {
	sc := flatScenario(24, 20, 2, 8*sim.Second)
	res := Run(sc, cc.MustNew("cubic"), Options{CollectSteps: true})
	if res.Scheme != "cubic" || res.ScenarioName != "test-flat" {
		t.Fatalf("labels: %+v", res)
	}
	if res.ThroughputBps < 0.7*24e6 {
		t.Fatalf("throughput %.2f Mb/s", res.ThroughputBps/1e6)
	}
	if len(res.Intervals) != 4 {
		t.Fatalf("intervals = %d", len(res.Intervals))
	}
	for i, iv := range res.Intervals {
		if iv.ThroughputBps <= 0 || iv.AvgRTT <= 0 {
			t.Fatalf("interval %d empty: %+v", i, iv)
		}
	}
	if len(res.Steps) < 300 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if res.AvgRTT < 20*sim.Millisecond {
		t.Fatalf("avg rtt %v below propagation", res.AvgRTT)
	}
}

func TestRunMultiFlowFairShare(t *testing.T) {
	sc := flatScenario(24, 40, 2, 30*sim.Second)
	sc.CubicFlows = 1
	sc.TestStart = 3 * sim.Second
	res := Run(sc, cc.MustNew("cubic"), Options{})
	if res.FairShareBps != netem.Mbps(12) {
		t.Fatalf("fair share %.2f", res.FairShareBps/1e6)
	}
	if len(res.BgThroughput) != 1 {
		t.Fatalf("background flows = %d", len(res.BgThroughput))
	}
	// Both flows should be active; combined near capacity.
	total := res.ThroughputBps + res.BgThroughput[0]
	if total < 0.7*24e6 {
		t.Fatalf("aggregate %.2f Mb/s", total/1e6)
	}
	if res.ThroughputBps < 0.2*12e6 {
		t.Fatalf("test flow starved: %.2f Mb/s", res.ThroughputBps/1e6)
	}
}

// ctrlHalf is a controller that pins cwnd to a constant, proving the
// Controller hook overrides the underlying scheme.
type ctrlHalf struct{ w float64 }

func (c *ctrlHalf) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	conn.SetCwnd(c.w)
}

func TestControllerHookDrivesCwnd(t *testing.T) {
	sc := flatScenario(24, 20, 4, 6*sim.Second)
	res := Run(sc, cc.MustNew("pure"), Options{Controller: &ctrlHalf{w: 4}})
	// With cwnd pinned to 4 packets on a 40-packet BDP, throughput must be
	// roughly 4/40 of capacity — far below what cubic alone would reach.
	if res.ThroughputBps > 0.25*24e6 {
		t.Fatalf("controller ignored: %.2f Mb/s", res.ThroughputBps/1e6)
	}
	if res.ThroughputBps < 0.04*24e6 {
		t.Fatalf("flow collapsed: %.2f Mb/s", res.ThroughputBps/1e6)
	}
}

func TestFlowTraceRecordsDatapath(t *testing.T) {
	sc := flatScenario(24, 20, 2, 5*sim.Second)
	tr := telemetry.NewFlowTrace(0)
	res := Run(sc, cc.MustNew("cubic"), Options{CollectSteps: true, Trace: tr})
	if tr.Len() != len(res.Steps) {
		t.Fatalf("trace %d samples, %d GR steps", tr.Len(), len(res.Steps))
	}
	samples := tr.Samples()
	sawQueue, sawSRTT := false, false
	for i, s := range samples {
		if s.Cwnd <= 0 || s.AtUs <= 0 || s.Flow != 1 {
			t.Fatalf("bad sample %d: %+v", i, s)
		}
		if i > 0 && s.AtUs <= samples[i-1].AtUs {
			t.Fatalf("timestamps not increasing at %d", i)
		}
		if s.QueuePkts > 0 {
			sawQueue = true
		}
		if s.SRTTMs > 0 {
			sawSRTT = true
		}
		if s.Action != res.Steps[i].Action || s.Reward != res.Steps[i].Reward {
			t.Fatalf("sample %d action/reward diverges from GR step", i)
		}
	}
	if !sawQueue {
		t.Fatal("queue occupancy never observed on a 2-BDP buffer")
	}
	if !sawSRTT {
		t.Fatal("srtt never observed")
	}
	// A decimated trace keeps strictly fewer samples.
	dec := telemetry.NewFlowTrace(200 * sim.Millisecond)
	Run(sc, cc.MustNew("cubic"), Options{Trace: dec})
	if dec.Len() == 0 || dec.Len() >= tr.Len() {
		t.Fatalf("decimated trace = %d (full %d)", dec.Len(), tr.Len())
	}
}

// TestTraceDoesNotPerturb proves telemetry is observational: the same
// seed with and without a trace must produce identical trajectories.
func TestTraceDoesNotPerturb(t *testing.T) {
	sc := flatScenario(24, 20, 2, 3*sim.Second)
	plain := Run(sc, cc.MustNew("cubic"), Options{CollectSteps: true})
	traced := Run(sc, cc.MustNew("cubic"), Options{CollectSteps: true, Trace: telemetry.NewFlowTrace(0)})
	if len(plain.Steps) != len(traced.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(plain.Steps), len(traced.Steps))
	}
	for i := range plain.Steps {
		if plain.Steps[i].Action != traced.Steps[i].Action || plain.Steps[i].Reward != traced.Steps[i].Reward {
			t.Fatalf("step %d differs with tracing on", i)
		}
	}
}

func TestSeriesSampling(t *testing.T) {
	sc := flatScenario(24, 20, 2, 5*sim.Second)
	res := Run(sc, cc.MustNew("cubic"), Options{SamplePeriod: 100 * sim.Millisecond})
	if len(res.Series) < 40 {
		t.Fatalf("series = %d samples", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Cwnd <= 0 || s.At <= 0 {
			t.Fatalf("bad sample %+v", s)
		}
	}
}
