// Package rollout runs one flow-under-test through a netem scenario —
// optionally against competing Cubic background flows — and gathers
// everything downstream consumers need: GR trajectories for the Policy
// Collector, interval scores for the leagues, and sampled time series for
// the behaviour figures.
package rollout

import (
	"context"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

// Controller is a periodic cwnd/pacing controller: the deployment-side
// counterpart of a kernel CC module. It is invoked every GR interval with
// the freshly computed state vector (Sage's TCP Pure execution block, and
// the rate-based ML baselines, act through this hook).
type Controller interface {
	Control(now sim.Time, conn *tcp.Conn, state []float64)
}

// BatchFlusher is implemented by controllers that defer their decisions
// into a shared batching engine (serve.Controller). Run and RunMulti call
// FlushBatch once per GR interval after every flow's Control hook has
// enqueued its state, letting one batched forward pass serve all flows;
// the flusher applies each flow's cwnd update and kicks its connection.
// Within an interval no simulation events run between the Control calls
// and the flush, so deferred application is semantically identical to
// acting inline.
type BatchFlusher interface {
	FlushBatch(now sim.Time)
}

// IntervalStats scores one quarter of the test window (Appendix D computes
// per-interval scores so transient behaviour is not smoothed away).
type IntervalStats struct {
	ThroughputBps float64
	AvgRTT        sim.Time // 2× the receiver-side mean one-way delay
	LossPkts      int64
}

// Sample is one point of the recorded time series (for Figs. 17–19, 24, 25).
type Sample struct {
	At          sim.Time
	Cwnd        float64
	SendRateBps float64
	ThrBps      float64
	OWD         sim.Time
	SRTT        sim.Time
}

// Result aggregates one rollout.
type Result struct {
	Scheme        string
	ScenarioName  string
	ThroughputBps float64 // receiver throughput over the test window
	AvgRTT        sim.Time
	AvgOWD        sim.Time
	LossRate      float64 // lost / sent
	FairShareBps  float64
	Intervals     []IntervalStats
	Steps         []gr.Step // GR trajectory (when GR collection is on)
	Series        []Sample  // sampled dynamics (when SamplePeriod > 0)
	BgThroughput  []float64 // per-background-flow receiver throughput (bps)
	// Interrupted reports that Options.Ctx was cancelled mid-rollout: the
	// aggregates cover only the simulated window that actually ran, and
	// consumers (the collector) must not treat the trajectory as complete.
	Interrupted bool
}

// Options tunes a rollout.
type Options struct {
	GR           gr.Config     // GR sampling config (always filled)
	CollectSteps bool          // record the GR trajectory
	Controller   Controller    // optional periodic controller for the test flow
	SamplePeriod sim.Time      // 0 = no time series
	Intervals    int           // score intervals (default 4)
	RewardKind   gr.RewardKind // reward override (with ForceReward set)
	ForceReward  bool          // use RewardKind instead of deriving from the scenario
	TCP          tcp.Options
	// Trace, when non-nil, receives one telemetry.FlowSample per GR tick
	// for the flow under test — sender datapath state plus bottleneck
	// queue occupancy. Recording reads snapshots only; it cannot perturb
	// the simulation.
	Trace *telemetry.FlowTrace
	// Ctx, when non-nil, is polled once per GR interval; cancellation
	// stops the simulation early and marks the Result Interrupted, so
	// SIGINT can drain a campaign without killing rollouts mid-event.
	Ctx context.Context
}

// Run executes the scenario with the flow under test using ccUnderTest.
func Run(sc netem.Scenario, ccUnderTest tcp.CongestionControl, opt Options) Result {
	opt.GR = opt.GR.Fill()
	if opt.Intervals == 0 {
		opt.Intervals = 4
	}
	loop := sim.NewLoop()
	n := sc.Build(loop)

	// Background Cubic flows join first (Appendix C.2), slightly staggered
	// so they do not move in lockstep.
	bg := make([]*tcp.Flow, sc.CubicFlows)
	for i := range bg {
		f := tcp.NewFlow(loop, n, 100+i, cc.MustNew("cubic"), opt.TCP)
		stagger := sim.Time(i) * 50 * sim.Millisecond
		loop.At(stagger, func(t sim.Time) { f.Conn.Start(t) })
		bg[i] = f
	}

	ut := tcp.NewFlow(loop, n, 1, ccUnderTest, opt.TCP)

	kind := gr.RewardSingleFlow
	if sc.CubicFlows > 0 {
		kind = gr.RewardFriendly
	}
	if opt.ForceReward {
		kind = opt.RewardKind
	}
	mon := gr.NewMonitor(opt.GR, ut.Conn, gr.RewardContext{
		Kind:      kind,
		Capacity:  sc.Rate.At,
		MinRTT:    sc.MinRTT,
		FairShare: sc.FairShare(),
	})

	res := Result{
		Scheme:       ccUnderTest.Name(),
		ScenarioName: sc.Name,
		FairShareBps: sc.FairShare(),
	}

	// Warm up the background traffic before the test flow joins.
	start := sc.TestStart
	loop.RunUntil(start)
	ut.Conn.Start(loop.Now())

	var (
		prevSent    int64
		prevRx      int64
		prevSampleT = start
	)
	interval := opt.GR.Interval
	nextSample := start + opt.SamplePeriod

	type snap struct {
		rxBytes int64
		rxPkts  int64
		owdSum  sim.Time
		lost    int64
	}
	takeSnap := func() snap {
		b, p, s := ut.Sink.Totals()
		return snap{rxBytes: b, rxPkts: p, owdSum: s, lost: ut.Conn.LostPkts()}
	}
	window := sc.Duration - start
	boundaries := make([]sim.Time, opt.Intervals)
	for i := range boundaries {
		boundaries[i] = start + window*sim.Time(i+1)/sim.Time(opt.Intervals)
	}
	lastSnap := takeSnap()
	lastBoundary := start
	bi := 0

	for now := start + interval; now <= sc.Duration; now += interval {
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		loop.RunUntil(now)
		step := mon.Tick(now)
		if opt.Controller != nil {
			opt.Controller.Control(now, ut.Conn, step.State)
			if bf, ok := opt.Controller.(BatchFlusher); ok {
				// A batching controller only enqueued its decision; the
				// flush applies the cwnd update and kicks the connection.
				// Kicking here with the pre-decision window could send
				// packets the decision would not have allowed.
				bf.FlushBatch(now)
			} else {
				ut.Conn.Kick(now)
			}
		}
		if opt.CollectSteps {
			res.Steps = append(res.Steps, step)
		}
		if opt.Trace != nil {
			st := ut.Conn.Stats()
			q := n.Link.Queue()
			opt.Trace.Record(telemetry.FlowSample{
				AtUs:         int64(now),
				Flow:         ut.Conn.ID,
				Cwnd:         st.Cwnd,
				SRTTMs:       st.SRTT.Millis(),
				RTTVarMs:     st.RTTVar.Millis(),
				InflightPkts: st.InflightPkts,
				DeliveryBps:  st.DeliveryRate * 8,
				LostPkts:     st.LostPkts,
				Retrans:      st.RTOs,
				Recoveries:   st.Recoveries,
				QueuePkts:    q.Len(),
				QueueBytes:   q.Bytes(),
				Action:       step.Action,
				Reward:       step.Reward,
			})
		}
		if opt.SamplePeriod > 0 && now >= nextSample {
			sent := ut.Conn.SentPkts()
			rx, _, _ := ut.Sink.Totals()
			span := (now - prevSampleT).Seconds()
			s := Sample{
				At:          now,
				Cwnd:        ut.Conn.Cwnd,
				SendRateBps: float64(sent-prevSent) * float64(ut.Conn.MSS()) * 8 / span,
				ThrBps:      float64(rx-prevRx) * 8 / span,
				OWD:         ut.Sink.OWDAvg(),
				SRTT:        ut.Conn.SRTT(),
			}
			res.Series = append(res.Series, s)
			prevSent, prevRx, prevSampleT = sent, rx, now
			nextSample += opt.SamplePeriod
		}
		for bi < len(boundaries) && now >= boundaries[bi] {
			cur := takeSnap()
			span := (boundaries[bi] - lastBoundary).Seconds()
			st := IntervalStats{
				ThroughputBps: float64(cur.rxBytes-lastSnap.rxBytes) * 8 / span,
				LossPkts:      cur.lost - lastSnap.lost,
			}
			if dp := cur.rxPkts - lastSnap.rxPkts; dp > 0 {
				st.AvgRTT = 2 * (cur.owdSum - lastSnap.owdSum) / sim.Time(dp)
			}
			res.Intervals = append(res.Intervals, st)
			lastSnap = cur
			lastBoundary = boundaries[bi]
			bi++
		}
	}

	// Whole-window aggregates.
	rxBytes, rxPkts, owdSum := ut.Sink.Totals()
	res.ThroughputBps = float64(rxBytes) * 8 / window.Seconds()
	if rxPkts > 0 {
		res.AvgOWD = owdSum / sim.Time(rxPkts)
		res.AvgRTT = 2 * res.AvgOWD
	}
	if sent := ut.Conn.SentPkts(); sent > 0 {
		res.LossRate = float64(ut.Conn.LostPkts()) / float64(sent)
	}
	for _, f := range bg {
		res.BgThroughput = append(res.BgThroughput, float64(f.Sink.RxBytes)*8/sc.Duration.Seconds())
	}
	return res
}
