package chaos_test

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"sage/internal/chaos"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/serve"
)

func startDaemon(t *testing.T, ov *serve.OverloadConfig, deadline time.Duration) (string, func()) {
	t.Helper()
	eng := serve.NewEngine(serve.Config{
		Policy:        nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim}),
		MaxBatch:      32,
		BatchDeadline: deadline,
		Workers:       2,
		Overload:      ov,
	})
	sock := filepath.Join(t.TempDir(), "sage.sock")
	srv := serve.NewServer(eng)
	go srv.ListenAndServe(sock)
	for i := 0; ; i++ {
		c, err := net.Dial("unix", sock)
		if err == nil {
			c.Close()
			break
		}
		if i > 200 {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return sock, srv.Shutdown
}

// A mini soak against a healthy daemon: every call is answered, nothing
// is silently dropped, and the accounting identity holds.
func TestRunLoadHealthy(t *testing.T) {
	sock, stop := startDaemon(t, &serve.OverloadConfig{}, 200*time.Microsecond)
	defer stop()

	stats := chaos.RunLoad(chaos.LoadSpec{
		Dial:     func() (net.Conn, error) { return net.Dial("unix", sock) },
		Conns:    4,
		Duration: 300 * time.Millisecond,
		StateDim: gr.StateDim,
		Seed:     1,
	})
	if stats.OK == 0 {
		t.Fatalf("no successful decisions: %+v", stats)
	}
	if stats.Errors != 0 {
		t.Fatalf("healthy daemon produced %d transport errors", stats.Errors)
	}
	if stats.Sent != stats.Answered() {
		t.Fatalf("accounting: sent %d != answered %d", stats.Sent, stats.Answered())
	}
	if stats.Latency.Summary().Count == 0 {
		t.Fatal("no latencies recorded")
	}
}

// Shed-not-silence: a daemon squeezed to a single in-flight slot under
// many hot-looping connections must answer every call explicitly — OK,
// fallback, busy, or a typed OVERLOAD — with zero unexplained errors.
func TestRunLoadOverloadedNeverSilent(t *testing.T) {
	sock, stop := startDaemon(t, &serve.OverloadConfig{MaxInflight: 1}, 20*time.Millisecond)
	defer stop()

	stats := chaos.RunLoad(chaos.LoadSpec{
		Dial:     func() (net.Conn, error) { return net.Dial("unix", sock) },
		Conns:    8,
		Duration: 500 * time.Millisecond,
		StateDim: gr.StateDim,
		Seed:     2,
		Timeout:  5 * time.Second,
	})
	if stats.Overload == 0 {
		t.Fatalf("squeezed daemon shed nothing: %+v", stats)
	}
	if stats.Errors != 0 {
		t.Fatalf("overload produced %d silent/errored calls, want explicit answers only: %+v", stats.Errors, stats)
	}
	if stats.Sent != stats.Answered() {
		t.Fatalf("accounting: sent %d != answered %d", stats.Sent, stats.Answered())
	}
}

// The generator survives a fault-injecting transport by redialing, and the
// run still terminates with the books balanced.
func TestRunLoadThroughChaosTransport(t *testing.T) {
	sock, stop := startDaemon(t, &serve.OverloadConfig{}, 200*time.Microsecond)
	defer stop()

	spec, err := chaos.ParseFaultSpec("seed=7,drop=0.05,delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	tr := chaos.NewTransport(spec)
	stats := chaos.RunLoad(chaos.LoadSpec{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("unix", sock)
			if err != nil {
				return nil, err
			}
			return tr.WrapConn(c), nil
		},
		Conns:    4,
		Duration: 400 * time.Millisecond,
		StateDim: gr.StateDim,
		Seed:     3,
		Timeout:  250 * time.Millisecond,
		Redial:   true,
	})
	if stats.OK == 0 {
		t.Fatalf("nothing served through the chaos transport: %+v", stats)
	}
	if stats.Sent != stats.Answered()+stats.Errors {
		t.Fatalf("accounting: sent %d != answered %d + errors %d", stats.Sent, stats.Answered(), stats.Errors)
	}
}
