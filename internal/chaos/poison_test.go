package chaos

import (
	"testing"

	"sage/internal/collector"
	"sage/internal/gr"
)

func poolOf(n int) *collector.Pool {
	p := &collector.Pool{}
	for i := 0; i < n; i++ {
		tr := collector.Trajectory{Scheme: "s", Env: "e"}
		for j := 0; j < 50; j++ {
			tr.Steps = append(tr.Steps, gr.Step{
				State:  []float64{float64(j), 1},
				Action: 1.0,
				Reward: 0.5,
			})
		}
		p.Trajs = append(p.Trajs, tr)
	}
	return p
}

func TestPoisonPoolIsDeterministicAndDetectable(t *testing.T) {
	p1, p2 := poolOf(20), poolOf(20)
	l1 := PoisonPool(p1, 0.3, 42)
	l2 := PoisonPool(p2, 0.3, 42)
	if len(l1) != 6 {
		t.Fatalf("poisoned %d trajs, want 6", len(l1))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("nondeterministic ledger: %+v vs %+v", l1[i], l2[i])
		}
	}

	// Every injected corruption must be caught by the quality gate.
	_, rep := collector.Sanitize(p1, collector.QualityConfig{FrozenRun: 16})
	caught := map[int]bool{}
	for _, is := range rep.Issues {
		caught[is.Index] = true
	}
	for _, pt := range l1 {
		if !caught[pt.Index] {
			t.Fatalf("poison %q at traj %d not caught by quality gate", pt.Kind, pt.Index)
		}
	}
	if rep.Quarantined != len(l1) {
		t.Fatalf("quarantined %d, poisoned %d (clean trajectories flagged?)", rep.Quarantined, len(l1))
	}
}

func TestPoisonPoolAtLeastOne(t *testing.T) {
	p := poolOf(3)
	if l := PoisonPool(p, 0.01, 1); len(l) != 1 {
		t.Fatalf("frac rounding dropped the poison: %d", len(l))
	}
	if l := PoisonPool(poolOf(3), 0, 1); len(l) != 0 {
		t.Fatalf("frac=0 must be a no-op, got %d", len(l))
	}
}
