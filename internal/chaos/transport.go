package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Transport injects deterministic, seeded network faults into
// length-prefixed-frame connections — the framing internal/dist and
// internal/serve both speak (u32 big-endian payload length, then
// payload). Because the wrapper understands frames, faults land on
// protocol-meaningful boundaries: a whole request can be dropped,
// duplicated, or truncated mid-frame, rather than corrupting the stream
// at an arbitrary byte where no real network component would.
//
// Faults simulated, each rolled per frame from a per-connection seeded
// stream (so a run with the same seed replays the same schedule):
//
//   - Drop: the connection is torn down abruptly (RST-like);
//   - Dup: the frame is delivered twice (retransmission after a lost ACK);
//   - Trunc: a prefix of the frame is delivered and the connection dies
//     (peer crash mid-send);
//   - Stall: delivery hangs for StallFor (a hung middlebox) — the fault
//     per-RPC deadlines exist to break;
//   - Delay/Jitter: added latency per frame;
//   - Partitions: periodic windows (every PartEvery, lasting PartFor)
//     during which frames are silently discarded — one-way (PartDir
//     "in"/"out") or full ("both") — the fault retries and idempotent
//     RPC exist to absorb.
//
// A Transport is shared by every connection it wraps: connection N gets
// fault stream derive(Seed, N), so concurrent connections do not perturb
// each other's schedules (though accept order still decides which
// connection is N).
type Transport struct {
	spec  FaultSpec
	seq   atomic.Int64
	start time.Time

	// OnEvent, when non-nil, observes every injected fault (telemetry
	// JSONL, test assertions). Called from connection goroutines; must be
	// safe for concurrent use. Set before wrapping any connection.
	OnEvent func(FaultEvent)
}

// FaultSpec configures a Transport. Probabilities are per frame in
// [0,1]; zero values disable the corresponding fault.
type FaultSpec struct {
	Seed     int64         // base seed for every per-connection fault stream
	Drop     float64       // P(abruptly close the connection)
	Dup      float64       // P(deliver the frame twice)
	Trunc    float64       // P(deliver a prefix, then close)
	Stall    float64       // P(hold the frame for StallFor)
	StallFor time.Duration // stall duration (default 5s)
	Delay    time.Duration // fixed added latency per frame
	Jitter   time.Duration // uniform extra latency in [0, Jitter)

	PartEvery time.Duration // partition period (0 = no partitions)
	PartFor   time.Duration // partition length at the start of each period
	PartDir   string        // "in", "out", or "both" (default)
}

// Active reports whether the spec injects any fault at all.
func (s FaultSpec) Active() bool {
	return s.Drop > 0 || s.Dup > 0 || s.Trunc > 0 || s.Stall > 0 ||
		s.Delay > 0 || s.Jitter > 0 || (s.PartEvery > 0 && s.PartFor > 0)
}

// FaultEvent describes one injected fault.
type FaultEvent struct {
	Time  time.Time `json:"time"`
	Conn  int64     `json:"conn"` // connection index within the transport
	Dir   string    `json:"dir"`  // "read" | "write"
	Kind  string    `json:"kind"` // "drop" | "dup" | "trunc" | "stall" | "partition"
	Bytes int       `json:"bytes"`
}

// ParseFaultSpec parses the comma-separated key=value spec the -chaos
// CLI flag accepts, e.g.
//
//	seed=7,drop=0.02,dup=0.05,trunc=0.01,delay=2ms,jitter=3ms,stall=0.01,stall-for=2s,part-every=10s,part-for=1s,part-dir=out
func ParseFaultSpec(s string) (FaultSpec, error) {
	spec := FaultSpec{Seed: 1, StallFor: 5 * time.Second, PartDir: "both"}
	if strings.TrimSpace(s) == "" {
		return spec, errors.New("chaos: empty fault spec")
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("chaos: fault spec entry %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			spec.Drop, err = parseProb(val)
		case "dup":
			spec.Dup, err = parseProb(val)
		case "trunc":
			spec.Trunc, err = parseProb(val)
		case "stall":
			spec.Stall, err = parseProb(val)
		case "stall-for":
			spec.StallFor, err = time.ParseDuration(val)
		case "delay":
			spec.Delay, err = time.ParseDuration(val)
		case "jitter":
			spec.Jitter, err = time.ParseDuration(val)
		case "part-every":
			spec.PartEvery, err = time.ParseDuration(val)
		case "part-for":
			spec.PartFor, err = time.ParseDuration(val)
		case "part-dir":
			if val != "in" && val != "out" && val != "both" {
				return spec, fmt.Errorf("chaos: part-dir %q (want in|out|both)", val)
			}
			spec.PartDir = val
		default:
			return spec, fmt.Errorf("chaos: unknown fault spec key %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("chaos: fault spec %s=%s: %w", key, val, err)
		}
	}
	if spec.PartEvery > 0 && spec.PartFor >= spec.PartEvery {
		return spec, fmt.Errorf("chaos: part-for %s must be shorter than part-every %s", spec.PartFor, spec.PartEvery)
	}
	return spec, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

// NewTransport builds a transport over the fault spec.
func NewTransport(spec FaultSpec) *Transport {
	if spec.StallFor <= 0 {
		spec.StallFor = 5 * time.Second
	}
	return &Transport{spec: spec, start: time.Now()}
}

// WrapConn wraps one connection with this transport's fault schedule.
func (t *Transport) WrapConn(c net.Conn) net.Conn {
	id := t.seq.Add(1)
	// Independent read/write streams so one direction's draw count does
	// not shift the other's schedule.
	return &faultConn{
		Conn: c,
		t:    t,
		id:   id,
		rd:   faultSide{rng: rand.New(rand.NewSource(t.spec.Seed<<16 ^ id<<1))},
		wr:   faultSide{rng: rand.New(rand.NewSource(t.spec.Seed<<16 ^ (id<<1 | 1)))},
	}
}

// Listener wraps ln so every accepted connection carries the fault
// schedule.
func (t *Transport) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, t: t}
}

type faultListener struct {
	net.Listener
	t *Transport
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.WrapConn(c), nil
}

// partitioned reports whether a partition window covers now in the given
// direction ("read" is the spec's "in" side, "write" its "out" side).
func (t *Transport) partitioned(dir string) bool {
	s := t.spec
	if s.PartEvery <= 0 || s.PartFor <= 0 {
		return false
	}
	if s.PartDir == "in" && dir != "read" {
		return false
	}
	if s.PartDir == "out" && dir != "write" {
		return false
	}
	return time.Since(t.start)%s.PartEvery < s.PartFor
}

func (t *Transport) emit(ev FaultEvent) {
	if t.OnEvent != nil {
		ev.Time = time.Now()
		t.OnEvent(ev)
	}
}

// maxChaosFrame bounds a buffered frame; anything larger than the dist
// protocol's own limit is a stream the wrapper does not understand.
const maxChaosFrame = 1 << 28

var errNotFramed = errors.New("chaos: stream is not length-prefixed framed (frame exceeds limit)")

// faultSide is one direction's fault stream and buffer.
type faultSide struct {
	mu   sync.Mutex
	rng  *rand.Rand
	buf  []byte // write: partial outbound frame; read: decoded inbound bytes
	fail error  // sticky error served after buf drains (trunc/drop)
}

// faultConn applies the schedule to each complete frame crossing the
// connection in either direction.
type faultConn struct {
	net.Conn
	t  *Transport
	id int64
	rd faultSide
	wr faultSide
}

// roll draws one fault decision. Order fixes precedence: a frame that
// would both drop and dup only drops.
func (s *faultSide) roll(spec FaultSpec) string {
	// One draw per fault kind per frame keeps the schedule deterministic
	// even as individual probabilities are tuned.
	pDrop, pTrunc, pDup, pStall := s.rng.Float64(), s.rng.Float64(), s.rng.Float64(), s.rng.Float64()
	switch {
	case pDrop < spec.Drop:
		return "drop"
	case pTrunc < spec.Trunc:
		return "trunc"
	case pDup < spec.Dup:
		return "dup"
	case pStall < spec.Stall:
		return "stall"
	}
	return ""
}

// latency draws the added delay for one frame.
func (s *faultSide) latency(spec FaultSpec) time.Duration {
	d := spec.Delay
	if spec.Jitter > 0 {
		d += time.Duration(s.rng.Int63n(int64(spec.Jitter)))
	}
	return d
}

// Write buffers p until at least one complete frame is assembled, then
// delivers each frame through the fault schedule. Buffered bytes are
// reported written; a frame the schedule kills surfaces as a connection
// error on this or a later call.
func (c *faultConn) Write(p []byte) (int, error) {
	s := &c.wr
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return 0, s.fail
	}
	s.buf = append(s.buf, p...)
	for {
		frame, rest, err := splitFrame(s.buf)
		if err != nil {
			s.fail = err
			return 0, err
		}
		if frame == nil {
			return len(p), nil
		}
		s.buf = rest
		if err := c.deliver(s, "write", frame, func(b []byte) error {
			_, werr := c.Conn.Write(b)
			return werr
		}); err != nil {
			s.fail = err
			return 0, err
		}
	}
}

// Read serves decoded bytes, pulling (and fault-processing) one inbound
// frame at a time from the underlying connection.
func (c *faultConn) Read(p []byte) (int, error) {
	s := &c.rd
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 {
		if s.fail != nil {
			return 0, s.fail
		}
		frame, err := readFrame(c.Conn)
		if err != nil {
			return 0, err
		}
		if err := c.deliver(s, "read", frame, func(b []byte) error {
			s.buf = append(s.buf, b...)
			return nil
		}); err != nil {
			if len(s.buf) > 0 {
				// Serve the truncated prefix first; the error is sticky.
				s.fail = err
				break
			}
			return 0, err
		}
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// deliver applies the fault schedule to one complete frame and hands the
// surviving bytes to sink.
func (c *faultConn) deliver(s *faultSide, dir string, frame []byte, sink func([]byte) error) error {
	spec := c.t.spec
	if c.t.partitioned(dir) {
		// Silent discard: the bytes vanish as if in flight when the
		// partition began. Deadlines, retries, and idempotency must cope.
		c.t.emit(FaultEvent{Conn: c.id, Dir: dir, Kind: "partition", Bytes: len(frame)})
		return nil
	}
	if d := s.latency(spec); d > 0 {
		time.Sleep(d)
	}
	switch s.roll(spec) {
	case "drop":
		c.t.emit(FaultEvent{Conn: c.id, Dir: dir, Kind: "drop", Bytes: len(frame)})
		c.Conn.Close()
		return &ErrInjected{Kind: "connection drop"}
	case "trunc":
		n := len(frame) / 2
		c.t.emit(FaultEvent{Conn: c.id, Dir: dir, Kind: "trunc", Bytes: n})
		sink(frame[:n])
		c.Conn.Close()
		return &ErrInjected{Kind: "truncated frame"}
	case "dup":
		c.t.emit(FaultEvent{Conn: c.id, Dir: dir, Kind: "dup", Bytes: len(frame)})
		if err := sink(frame); err != nil {
			return err
		}
		return sink(frame)
	case "stall":
		c.t.emit(FaultEvent{Conn: c.id, Dir: dir, Kind: "stall", Bytes: len(frame)})
		time.Sleep(spec.StallFor)
	}
	return sink(frame)
}

// splitFrame returns the first complete frame in buf and the remainder,
// or (nil, buf, nil) when buf holds only a partial frame.
func splitFrame(buf []byte) (frame, rest []byte, err error) {
	if len(buf) < 4 {
		return nil, buf, nil
	}
	n := int(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]))
	if n > maxChaosFrame {
		return nil, buf, errNotFramed
	}
	total := 4 + n
	if len(buf) < total {
		return nil, buf, nil
	}
	return buf[:total:total], append([]byte(nil), buf[total:]...), nil
}

// readFrame reads one complete frame (header + payload) off r.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
	if n > maxChaosFrame {
		return nil, errNotFramed
	}
	frame := make([]byte, 4+n)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[4:]); err != nil {
		return nil, err
	}
	return frame, nil
}
