package chaos

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sage/internal/serve"
	"sage/internal/telemetry"
)

// LoadSpec describes a synthetic decision load against a sage-serve
// daemon. The soak harness uses it to drive the serving plane at a
// multiple of its measured capacity — optionally through a fault-injecting
// Transport — and assert that overload is handled by explicit shedding
// and brownout, never by crashes, unbounded memory, or silence.
type LoadSpec struct {
	// Dial opens one connection to the daemon. Wrap the returned conn in a
	// chaos Transport here to soak the overload ladder under transport
	// faults as well as raw load.
	Dial func() (net.Conn, error)
	// Conns is the number of concurrent client connections (one flow —
	// one engine session — per connection).
	Conns int
	// Duration bounds the run.
	Duration time.Duration
	// Interval is each connection's gap between decisions; zero means a
	// hot loop (each conn issues its next Decide as soon as the previous
	// answer lands).
	Interval time.Duration
	// StateDim is the observation vector width the daemon's model expects.
	StateDim int
	// Seed makes the generated observation streams reproducible.
	Seed int64
	// HighPriFrac in [0,1] marks that leading fraction of connections as
	// the high-priority class (served from the policy through brownout).
	HighPriFrac float64
	// Timeout bounds each round trip (default 2s). A timed-out connection
	// is poisoned and counts an error; with Redial it reconnects.
	Timeout time.Duration
	// Redial reopens a connection after a transport error instead of
	// retiring the worker — the right setting when soaking through a
	// fault-injecting Transport.
	Redial bool
	// SessionBase offsets the session ids used by this run so consecutive
	// runs against one daemon don't collide.
	SessionBase uint64
}

// LoadStats aggregates one load run. Every Decide lands in exactly one of
// OK/Fallback/Busy/Overload/Errors, so Sent == the sum of those five:
// an overloaded server that answered with silence (a stall or an
// unexplained hangup) shows up as Errors, and the soak harness asserts
// that bucket stays at zero when only load (not transport chaos) is
// applied.
type LoadStats struct {
	Sent     int64
	OK       int64 // policy decision served
	Fallback int64 // explicit safety/brownout fallback decision served
	Busy     int64 // session already had a request in flight
	Overload int64 // typed OVERLOAD rejection (request- or accept-time)
	Errors   int64 // transport errors, timeouts, protocol violations
	Redials  int64
	// Latency is the per-call round-trip distribution in microseconds,
	// successful answers only (OK/Fallback/Busy/Overload).
	Latency *telemetry.Histogram
}

// RunLoad drives the load described by spec and blocks until Duration
// elapses and every worker has retired.
func RunLoad(spec LoadSpec) LoadStats {
	if spec.Conns <= 0 {
		spec.Conns = 1
	}
	if spec.StateDim <= 0 {
		spec.StateDim = 1
	}
	if spec.Timeout == 0 {
		spec.Timeout = 2 * time.Second
	}
	stats := LoadStats{Latency: telemetry.NewHistogram()}
	highPri := int(spec.HighPriFrac * float64(spec.Conns))
	deadline := time.Now().Add(spec.Duration)

	var wg sync.WaitGroup
	for i := 0; i < spec.Conns; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(worker)))
			sid := spec.SessionBase + uint64(worker) + 1
			state := make([]float64, spec.StateDim)

			connect := func() *serve.Client {
				conn, err := spec.Dial()
				if err != nil {
					atomic.AddInt64(&stats.Errors, 1)
					return nil
				}
				cl := serve.NewClient(conn)
				cl.SetTimeout(spec.Timeout)
				cl.SetHighPriority(worker < highPri)
				return cl
			}
			cl := connect()
			cwnd := 10.0
			for time.Now().Before(deadline) {
				if cl == nil {
					if !spec.Redial {
						return
					}
					time.Sleep(10 * time.Millisecond)
					atomic.AddInt64(&stats.Redials, 1)
					cl = connect()
					continue
				}
				for j := range state {
					state[j] = rng.Float64()
				}
				atomic.AddInt64(&stats.Sent, 1)
				t0 := time.Now()
				newCwnd, status, err := cl.Decide(sid, cwnd, state)
				if err != nil {
					atomic.AddInt64(&stats.Errors, 1)
					cl.Close()
					cl = nil // a failed round trip poisons the framing
					continue
				}
				stats.Latency.Observe(float64(time.Since(t0).Microseconds()))
				switch status {
				case serve.StatusOK:
					atomic.AddInt64(&stats.OK, 1)
					cwnd = newCwnd
				case serve.StatusFallback:
					atomic.AddInt64(&stats.Fallback, 1)
					cwnd = newCwnd
				case serve.StatusBusy:
					atomic.AddInt64(&stats.Busy, 1)
				case serve.StatusOverload:
					atomic.AddInt64(&stats.Overload, 1)
					if ra := cl.RetryAfter(); ra > 0 {
						// Honor the hint, but stay aggressive enough to
						// keep pressure on (this is a load generator).
						time.Sleep(min(ra, 20*time.Millisecond))
					}
				default:
					atomic.AddInt64(&stats.Errors, 1)
				}
				if spec.Interval > 0 {
					time.Sleep(spec.Interval)
				}
			}
			if cl != nil {
				cl.Close()
			}
		}(i)
	}
	wg.Wait()
	return stats
}

// Answered returns the count of calls that got an explicit protocol
// answer of any kind.
func (s *LoadStats) Answered() int64 { return s.OK + s.Fallback + s.Busy + s.Overload }
