package chaos

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sage/internal/collector"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/safeio"
	"sage/internal/sim"
)

func tinyScenarios(n int) []netem.Scenario {
	return netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 2 * sim.Second})[:n]
}

func tinyPool(t *testing.T) *collector.Pool {
	t.Helper()
	p, err := collector.Collect(context.Background(), []string{"cubic"}, tinyScenarios(2), collector.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tinyLearner(t *testing.T, pool *collector.Pool) (*rl.CRR, *rl.Dataset) {
	t.Helper()
	ds := rl.BuildDataset(pool, nil)
	l := rl.NewCRR(ds, rl.CRRConfig{
		Policy: nn.PolicyConfig{Enc: 8, Hidden: 4, ResBlocks: 1, K: 2},
		Steps:  4, Batch: 2, SeqLen: 2, Seed: 7,
	})
	l.Train(context.Background(), ds, nil)
	return l, ds
}

// faults is the catalogue every artifact writer is driven through: each
// must leave either the previous artifact or nothing at the destination.
func faults() map[string]safeio.Hooks {
	return map[string]safeio.Hooks{
		"enospc":      {WrapWriter: ENOSPCAfter(64)},
		"short-write": {WrapWriter: ShortWriteAfter(64)},
		"kill":        {BeforeRename: KillBeforeRename()},
	}
}

// TestInterruptedSaveNeverCorrupts drives every artifact writer in the
// pipeline (pool, checkpoint, model policy) through each injected fault
// and asserts the crash-safety invariant: the previous artifact at the
// destination still loads, bit-identical.
func TestInterruptedSaveNeverCorrupts(t *testing.T) {
	pool := tinyPool(t)
	learner, ds := tinyLearner(t, pool)

	dir := t.TempDir()
	poolPath := filepath.Join(dir, "pool.gob.gz")
	ckptPath := filepath.Join(dir, "ckpt.gob.gz")

	// Generation one: good artifacts on disk.
	if err := pool.Save(poolPath); err != nil {
		t.Fatal(err)
	}
	if err := learner.SaveCheckpoint(ckptPath, 4); err != nil {
		t.Fatal(err)
	}

	for kind, h := range faults() {
		WithFaults(h, func() {
			if err := pool.Save(poolPath); err == nil {
				t.Fatalf("%s: pool save succeeded under fault", kind)
			}
			if err := learner.SaveCheckpoint(ckptPath, 8); err == nil {
				t.Fatalf("%s: checkpoint save succeeded under fault", kind)
			}
		})
		// The previous generation must still be fully readable.
		got, err := collector.Load(poolPath)
		if err != nil {
			t.Fatalf("%s: old pool corrupted: %v", kind, err)
		}
		if got.Transitions() != pool.Transitions() {
			t.Fatalf("%s: old pool lost data", kind)
		}
		if _, steps, err := rl.LoadCheckpoint(ckptPath, ds); err != nil || steps != 4 {
			t.Fatalf("%s: old checkpoint corrupted: steps=%d err=%v", kind, steps, err)
		}
		// No temp litter accumulates across faults.
		ents, _ := os.ReadDir(dir)
		if len(ents) != 2 {
			t.Fatalf("%s: leftover files: %v", kind, ents)
		}
	}
}

// TestFreshSaveUnderFaultLeavesNothing: when there is no previous
// artifact, an interrupted first save must leave no destination file at
// all (a missing file is recoverable; a torn one masquerades as data).
func TestFreshSaveUnderFaultLeavesNothing(t *testing.T) {
	pool := tinyPool(t)
	for kind, h := range faults() {
		path := filepath.Join(t.TempDir(), "pool.gob.gz")
		WithFaults(h, func() {
			if err := pool.Save(path); err == nil {
				t.Fatalf("%s: save succeeded under fault", kind)
			}
		})
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: destination exists after failed first save", kind)
		}
	}
}

// TestWorkerPanicRetriedOnce: a cell that panics once succeeds on its
// retry and the campaign is complete.
func TestWorkerPanicRetriedOnce(t *testing.T) {
	scens := tinyScenarios(2)
	pool, err := collector.Collect(context.Background(), []string{"cubic", "vegas"}, scens, collector.Options{
		Parallel:  2,
		FaultHook: PanicOn("vegas", scens[0].Name, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Trajs) != 4 {
		t.Fatalf("trajectories = %d, want 4 (retry must recover the cell)", len(pool.Trajs))
	}
	if len(pool.Failed) != 0 {
		t.Fatalf("failed = %+v, want none", pool.Failed)
	}
}

// TestWorkerPanicIsolatedToCell: a cell that keeps panicking is recorded
// as failed; every other cell still completes.
func TestWorkerPanicIsolatedToCell(t *testing.T) {
	scens := tinyScenarios(2)
	pool, err := collector.Collect(context.Background(), []string{"cubic", "vegas"}, scens, collector.Options{
		Parallel:  2,
		FaultHook: PanicOn("vegas", scens[0].Name, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Trajs) != 3 {
		t.Fatalf("trajectories = %d, want 3", len(pool.Trajs))
	}
	if len(pool.Failed) != 1 {
		t.Fatalf("failed = %+v, want exactly the poisoned cell", pool.Failed)
	}
	f := pool.Failed[0]
	if f.Scheme != "vegas" || f.Env != scens[0].Name {
		t.Fatalf("wrong failed cell: %+v", f)
	}
	if !strings.Contains(f.Err, "worker panic") {
		t.Fatalf("failure cause lost: %q", f.Err)
	}
	for _, tr := range pool.Trajs {
		if tr.Scheme == "vegas" && tr.Env == scens[0].Name {
			t.Fatal("failed cell also present as trajectory")
		}
	}
}

// TestCheckpointRotationFallback: when the newest checkpoint is corrupted
// on disk, LoadCheckpointAuto falls back to the previous generation.
func TestCheckpointRotationFallback(t *testing.T) {
	pool := tinyPool(t)
	learner, ds := tinyLearner(t, pool)
	path := filepath.Join(t.TempDir(), "ckpt.gob.gz")

	if err := learner.SaveCheckpointRotate(path, 4, 2); err != nil {
		t.Fatal(err)
	}
	if err := learner.SaveCheckpointRotate(path, 8, 2); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest generation in place.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	_, steps, from, err := rl.LoadCheckpointAuto(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 {
		t.Fatalf("fell back to steps=%d, want 4", steps)
	}
	if from != path+".1" {
		t.Fatalf("loaded %s, want the rotated generation", from)
	}

	// With every generation corrupted, the error must say so rather than
	// claim a fresh start.
	raw1, _ := os.ReadFile(path + ".1")
	raw1[len(raw1)/2] ^= 0xff
	os.WriteFile(path+".1", raw1, 0o644)
	if _, _, _, err := rl.LoadCheckpointAuto(path, ds); err == nil || rl.IsNotExist(err) {
		t.Fatalf("corrupt generations reported as %v", err)
	}
}

// TestCorruptArtifactErrorsAreActionable: pool and checkpoint loads
// surface safeio's diagnosis (naming the file), not raw gzip/gob internals.
func TestCorruptArtifactErrorsAreActionable(t *testing.T) {
	pool := tinyPool(t)
	learner, ds := tinyLearner(t, pool)
	dir := t.TempDir()
	poolPath := filepath.Join(dir, "pool.gob.gz")
	ckptPath := filepath.Join(dir, "ckpt.gob.gz")
	if err := pool.Save(poolPath); err != nil {
		t.Fatal(err)
	}
	if err := learner.SaveCheckpoint(ckptPath, 4); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{poolPath, ckptPath} {
		// Flip a payload byte.
		raw, _ := os.ReadFile(path)
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/2] ^= 1
		os.WriteFile(path, flipped, 0o644)
		err := loadArtifact(path, ds)
		if !errors.Is(err, safeio.ErrCorrupt) {
			t.Fatalf("%s flipped: err = %v, want ErrCorrupt", path, err)
		}
		if !strings.Contains(err.Error(), path) {
			t.Fatalf("error does not name the file: %v", err)
		}
		// Truncate to half.
		os.WriteFile(path, raw[:len(raw)/2], 0o644)
		err = loadArtifact(path, ds)
		if !errors.Is(err, safeio.ErrTruncated) && !errors.Is(err, safeio.ErrCorrupt) {
			t.Fatalf("%s truncated: err = %v", path, err)
		}
		// Zero-length.
		os.WriteFile(path, nil, 0o644)
		if err := loadArtifact(path, ds); !errors.Is(err, safeio.ErrTruncated) {
			t.Fatalf("%s empty: err = %v, want ErrTruncated", path, err)
		}
	}
}

func loadArtifact(path string, ds *rl.Dataset) error {
	if strings.Contains(filepath.Base(path), "pool") {
		_, err := collector.Load(path)
		return err
	}
	_, _, err := rl.LoadCheckpoint(path, ds)
	return err
}
