package chaos

import (
	"math"
	"math/rand"

	"sage/internal/collector"
)

// PoisonKind names one way a stored trajectory can be corrupted. The
// kinds mirror real collection failures: a worker that crashes mid-write
// (truncation), a monitor that wedges (frozen states), float corruption
// in transit (NaN/Inf fields), and a broken reward pipeline (huge
// rewards).
type PoisonKind string

const (
	PoisonNaNReward    PoisonKind = "nan-reward"
	PoisonInfState     PoisonKind = "inf-state"
	PoisonNaNAction    PoisonKind = "nan-action"
	PoisonZeroAction   PoisonKind = "zero-action"
	PoisonHugeReward   PoisonKind = "huge-reward"
	PoisonTruncate     PoisonKind = "truncate"
	PoisonFrozenStates PoisonKind = "frozen-states"
)

// allPoisonKinds is the round-robin injection order. The most virulent
// kinds come first so even a small poisoned fraction exercises both
// infection paths: NaN rewards corrupt the critic, NaN actions corrupt
// the policy-regression gradients directly.
var allPoisonKinds = []PoisonKind{
	PoisonNaNReward, PoisonNaNAction, PoisonInfState, PoisonZeroAction,
	PoisonHugeReward, PoisonTruncate, PoisonFrozenStates,
}

// PoisonedTraj records one injected corruption for test assertions.
type PoisonedTraj struct {
	Index int
	Kind  PoisonKind
}

// PoisonPool corrupts roughly frac of the pool's trajectories in place,
// cycling through every poison kind, and returns the ledger of what was
// done where. Deterministic for a given seed. It is the data-side
// analogue of PoisonPolicy: the fault the collector's quality gate and
// the training sentinel exist to survive.
func PoisonPool(p *collector.Pool, frac float64, seed int64) []PoisonedTraj {
	rng := rand.New(rand.NewSource(seed))
	n := int(float64(len(p.Trajs))*frac + 0.5)
	if n == 0 && frac > 0 && len(p.Trajs) > 0 {
		n = 1
	}
	perm := rng.Perm(len(p.Trajs))
	var ledger []PoisonedTraj
	for i := 0; i < n && i < len(perm); i++ {
		idx := perm[i]
		kind := allPoisonKinds[i%len(allPoisonKinds)]
		poisonTraj(&p.Trajs[idx], kind, rng)
		ledger = append(ledger, PoisonedTraj{Index: idx, Kind: kind})
	}
	return ledger
}

func poisonTraj(tr *collector.Trajectory, kind PoisonKind, rng *rand.Rand) {
	if len(tr.Steps) == 0 {
		return
	}
	at := rng.Intn(len(tr.Steps))
	switch kind {
	case PoisonNaNReward:
		for i := at; i < len(tr.Steps); i++ {
			tr.Steps[i].Reward = math.NaN()
		}
	case PoisonInfState:
		st := tr.Steps[at].State
		if len(st) > 0 {
			st[rng.Intn(len(st))] = math.Inf(1)
		}
	case PoisonNaNAction:
		tr.Steps[at].Action = math.NaN()
	case PoisonZeroAction:
		tr.Steps[at].Action = 0 // a window cannot multiply by zero
	case PoisonHugeReward:
		tr.Steps[at].Reward = 1e12
	case PoisonTruncate:
		tr.Steps = tr.Steps[:1] // crashed mid-write: a single orphan step
	case PoisonFrozenStates:
		// Wedged monitor: replay the first state for the whole episode.
		first := tr.Steps[0].State
		for i := range tr.Steps {
			tr.Steps[i].State = append([]float64(nil), first...)
		}
	}
}
