package chaos

import (
	"math"
	"testing"

	"sage/internal/nn"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// controllerFunc adapts a closure to the controller interface.
type controllerFunc func()

func (f controllerFunc) Control(sim.Time, *tcp.Conn, []float64) { f() }

func allNaN(pol *nn.Policy) bool {
	for _, p := range pol.Params() {
		for _, v := range p.Data {
			if !math.IsNaN(v) {
				return false
			}
		}
	}
	return true
}

func TestPoisonAndHealPolicyRoundTrip(t *testing.T) {
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: 4, Enc: 6, Hidden: 3, K: 2, Seed: 3})
	var orig [][]float64
	for _, p := range pol.Params() {
		orig = append(orig, append([]float64(nil), p.Data...))
	}

	snap := PoisonPolicy(pol)
	if !allNaN(pol) {
		t.Fatal("poison left finite parameters behind")
	}

	HealPolicy(pol, snap)
	for i, p := range pol.Params() {
		for j, v := range p.Data {
			if v != orig[i][j] {
				t.Fatalf("param %d[%d] = %v after heal, want %v", i, j, v, orig[i][j])
			}
		}
	}
}

func TestNaNInjectorPoisonsAndHealsOnSchedule(t *testing.T) {
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: 4, Enc: 6, Hidden: 3, K: 2, Seed: 3})
	called := 0
	inj := &NaNInjector{
		Inner:       controllerFunc(func() { called++ }),
		Policy:      pol,
		PoisonAfter: 3,
		HealAfter:   5,
	}
	for tick := 1; tick <= 6; tick++ {
		inj.Control(0, nil, nil)
		switch {
		case tick < 3:
			if inj.Poisoned() {
				t.Fatalf("tick %d: poisoned early", tick)
			}
		case tick < 5:
			if !inj.Poisoned() || !allNaN(pol) {
				t.Fatalf("tick %d: not poisoned", tick)
			}
		default:
			if inj.Poisoned() || allNaN(pol) {
				t.Fatalf("tick %d: not healed", tick)
			}
		}
	}
	if called != 6 {
		t.Fatalf("inner called %d times", called)
	}
	inj.Reset() // must not panic on a Reset-less inner
}
