package chaos

import (
	"math"

	"sage/internal/nn"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// controller mirrors rollout.Controller (redeclared so chaos does not
// need to import rollout).
type controller interface {
	Control(now sim.Time, conn *tcp.Conn, state []float64)
}

// PoisonPolicy overwrites every parameter of pol with NaN and returns a
// snapshot of the original values for HealPolicy — the runtime analogue
// of the filesystem faults above: a corrupted model serving live traffic.
func PoisonPolicy(pol *nn.Policy) [][]float64 {
	var snap [][]float64
	for _, p := range pol.Params() {
		snap = append(snap, append([]float64(nil), p.Data...))
		for i := range p.Data {
			p.Data[i] = math.NaN()
		}
	}
	return snap
}

// HealPolicy restores parameters captured by PoisonPolicy.
func HealPolicy(pol *nn.Policy, snap [][]float64) {
	for i, p := range pol.Params() {
		if i < len(snap) {
			copy(p.Data, snap[i])
		}
	}
}

// NaNInjector wraps a policy-driven controller and poisons the policy's
// weights with NaN after PoisonAfter control ticks, optionally healing
// them HealAfter ticks later. It lets tests drive the exact failure the
// runtime guardian exists for: a model that corrupts mid-flight (bit
// flip, bad checkpoint hot-swap, overflowing activation) and later comes
// back. The zero HealAfter never heals.
type NaNInjector struct {
	Inner       controller
	Policy      *nn.Policy
	PoisonAfter int // poison before the Nth control tick (1-based)
	HealAfter   int // heal before this tick (0 = never)

	ticks    int
	poisoned bool
	healed   bool
	snap     [][]float64
}

// Control implements rollout.Controller.
func (inj *NaNInjector) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	inj.ticks++
	if !inj.poisoned && inj.ticks >= inj.PoisonAfter {
		inj.snap = PoisonPolicy(inj.Policy)
		inj.poisoned = true
	}
	if inj.poisoned && !inj.healed && inj.HealAfter > 0 && inj.ticks >= inj.HealAfter {
		HealPolicy(inj.Policy, inj.snap)
		inj.healed = true
	}
	inj.Inner.Control(now, conn, state)
}

// Reset forwards to the wrapped controller (so guardian re-admission
// still clears the policy's recurrent state through the injector).
func (inj *NaNInjector) Reset() {
	if r, ok := inj.Inner.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// Poisoned reports whether the weights have been overwritten (and not yet
// healed).
func (inj *NaNInjector) Poisoned() bool { return inj.poisoned && !inj.healed }
