package chaos

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// frame builds one length-prefixed frame around payload.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// pipePair returns a wrapped client side and the raw server side of an
// in-memory connection.
func pipePair(t *testing.T, tr *Transport) (wrapped, raw net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return tr.WrapConn(a), b
}

// readFrames reads frames off raw until an error, reporting payloads.
func readFrames(raw net.Conn, out chan<- []byte) {
	for {
		f, err := readFrame(raw)
		if err != nil {
			close(out)
			return
		}
		out <- f[4:]
	}
}

func TestTransportPassThrough(t *testing.T) {
	tr := NewTransport(FaultSpec{Seed: 1}) // no faults
	wrapped, raw := pipePair(t, tr)
	got := make(chan []byte, 4)
	go readFrames(raw, got)

	want := []byte("hello")
	// Header and payload written separately, like writeMsg does.
	f := frame(want)
	if _, err := wrapped.Write(f[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Write(f[4:]); err != nil {
		t.Fatal(err)
	}
	if string(<-got) != string(want) {
		t.Fatal("frame mangled in pass-through")
	}
}

func TestTransportDuplicatesFrames(t *testing.T) {
	tr := NewTransport(FaultSpec{Seed: 1, Dup: 1})
	wrapped, raw := pipePair(t, tr)
	got := make(chan []byte, 4)
	go readFrames(raw, got)

	if _, err := wrapped.Write(frame([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	a, b := <-got, <-got
	if string(a) != "x" || string(b) != "x" {
		t.Fatalf("dup delivered %q, %q", a, b)
	}
}

func TestTransportDropsConnection(t *testing.T) {
	tr := NewTransport(FaultSpec{Seed: 1, Drop: 1})
	var events []FaultEvent
	var mu sync.Mutex
	tr.OnEvent = func(ev FaultEvent) { mu.Lock(); events = append(events, ev); mu.Unlock() }
	wrapped, raw := pipePair(t, tr)
	go io.Copy(io.Discard, raw)

	_, err := wrapped.Write(frame([]byte("x")))
	var inj *ErrInjected
	if !errors.As(err, &inj) {
		t.Fatalf("drop surfaced as %v", err)
	}
	// The error is sticky: the connection is dead for good.
	if _, err := wrapped.Write(frame([]byte("y"))); err == nil {
		t.Fatal("write after drop succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 || events[0].Kind != "drop" || events[0].Dir != "write" {
		t.Fatalf("events = %+v", events)
	}
}

func TestTransportTruncatesReadFrames(t *testing.T) {
	tr := NewTransport(FaultSpec{Seed: 1, Trunc: 1})
	wrapped, raw := pipePair(t, tr)
	go raw.Write(frame([]byte("0123456789")))

	// The truncated prefix is served, then the sticky injected error.
	buf := make([]byte, 64)
	n, err := wrapped.Read(buf)
	if err != nil || n == 0 || n >= 14 {
		t.Fatalf("first read = %d, %v (want partial frame)", n, err)
	}
	if _, err := wrapped.Read(buf); err == nil {
		t.Fatal("read past truncation succeeded")
	}
}

func TestTransportPartitionSilentlyDiscards(t *testing.T) {
	// The partition window covers the whole test: every frame vanishes,
	// writes still report success.
	tr := NewTransport(FaultSpec{Seed: 1, PartEvery: time.Hour, PartFor: time.Hour / 2, PartDir: "out"})
	wrapped, raw := pipePair(t, tr)
	got := make(chan []byte, 1)
	go readFrames(raw, got)

	if _, err := wrapped.Write(frame([]byte("gone"))); err != nil {
		t.Fatalf("partitioned write errored: %v", err)
	}
	select {
	case f := <-got:
		t.Fatalf("frame crossed a partition: %q", f)
	case <-time.After(50 * time.Millisecond):
	}
	// One-way: the "in" direction still flows under part-dir=out.
	go raw.Write(frame([]byte("back")))
	buf := make([]byte, 16)
	n, err := wrapped.Read(buf)
	if err != nil || string(buf[4:n]) != "back" {
		t.Fatalf("reverse direction blocked: %d %v", n, err)
	}
}

// TestTransportDeterministicSchedule: the same seed produces the same
// fault sequence; a different seed produces a different one.
func TestTransportDeterministicSchedule(t *testing.T) {
	// Dup is the one fault that leaves the connection alive, so the full
	// 40-frame schedule plays out; distinct frame sizes make the event
	// sequence a fingerprint of which frames were hit.
	run := func(seed int64) []int {
		tr := NewTransport(FaultSpec{Seed: seed, Dup: 0.3})
		var hits []int
		var mu sync.Mutex
		tr.OnEvent = func(ev FaultEvent) { mu.Lock(); hits = append(hits, ev.Bytes); mu.Unlock() }
		wrapped, raw := pipePair(t, tr)
		go io.Copy(io.Discard, raw)
		for i := 0; i < 40; i++ {
			if _, err := wrapped.Write(frame(make([]byte, i+1))); err != nil {
				t.Fatal(err)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), hits...)
	}
	a, b, c := run(7), run(7), run(8)
	if len(a) == 0 {
		t.Fatal("no faults fired at these rates")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced the identical schedule %v", a)
	}
}

func TestParseFaultSpec(t *testing.T) {
	spec, err := ParseFaultSpec("seed=7,drop=0.02,dup=0.05,trunc=0.01,delay=2ms,jitter=3ms,stall=0.01,stall-for=2s,part-every=10s,part-for=1s,part-dir=out")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 || spec.Drop != 0.02 || spec.Dup != 0.05 || spec.Trunc != 0.01 ||
		spec.Delay != 2*time.Millisecond || spec.Jitter != 3*time.Millisecond ||
		spec.Stall != 0.01 || spec.StallFor != 2*time.Second ||
		spec.PartEvery != 10*time.Second || spec.PartFor != time.Second || spec.PartDir != "out" {
		t.Fatalf("parsed spec = %+v", spec)
	}
	if !spec.Active() {
		t.Fatal("spec with faults reported inactive")
	}
	for _, bad := range []string{
		"", "drop", "drop=2", "drop=-1", "nope=1", "part-dir=up",
		"part-every=1s,part-for=2s", "delay=fast",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q parsed", bad)
		}
	}
}
