// Package chaos is the fault-injection harness behind the pipeline's
// crash-safety guarantees. It supplies composable filesystem faults for
// safeio's write path (short writes, ENOSPC, kill-mid-write) and panic
// injectors for collection workers; the package's tests drive real
// artifact writers through these faults and assert the invariants the
// system promises:
//
//   - an interrupted save never leaves a corrupt artifact at the
//     destination — the old file survives or the new one is complete;
//   - corrupt/truncated artifacts are detected at load with actionable
//     errors;
//   - a panicking collection worker fails only its own (scheme, env) cell.
//
// Transport (transport.go) extends the harness to the network: seeded,
// deterministic fault schedules — connection drops, duplicated and
// truncated frames, added latency, stalls, one-way and full partitions —
// over the length-prefixed framing the dist and serve protocols speak.
// internal/dist's chaos tests and the sage-coord -chaos soak flag both
// run the real control plane through it.
package chaos

import (
	"fmt"
	"io"

	"sage/internal/safeio"
)

// ErrInjected marks every failure this package fabricates, so tests can
// tell injected faults from real ones.
type ErrInjected struct{ Kind string }

func (e *ErrInjected) Error() string { return "chaos: injected " + e.Kind }

// ENOSPCAfter returns a safeio WrapWriter hook whose writer accepts n
// bytes and then fails like a full disk.
func ENOSPCAfter(n int64) func(io.Writer) io.Writer {
	return func(w io.Writer) io.Writer {
		return &limitWriter{w: w, left: n, err: &ErrInjected{Kind: "ENOSPC (no space left on device)"}}
	}
}

// ShortWriteAfter returns a hook whose writer silently drops everything
// past the first n bytes — the torn tail a crash leaves behind a buffered
// writer.
func ShortWriteAfter(n int64) func(io.Writer) io.Writer {
	return func(w io.Writer) io.Writer {
		return &limitWriter{w: w, left: n}
	}
}

// KillBeforeRename returns a BeforeRename hook simulating the process
// dying after the temp file is complete but before the atomic rename: the
// destination must be untouched.
func KillBeforeRename() func(tmp, final string) error {
	return func(tmp, final string) error {
		return &ErrInjected{Kind: "kill before rename"}
	}
}

// WithFaults installs hooks on safeio for the duration of fn and always
// restores the previous hooks, so tests cannot leak faults into each
// other.
func WithFaults(h safeio.Hooks, fn func()) {
	prev := safeio.TestHooks
	safeio.TestHooks = &h
	defer func() { safeio.TestHooks = prev }()
	fn()
}

// PanicOn returns a collector fault hook that panics the worker handling
// the given (scheme, env) cell; times bounds how often it fires, so a
// retried cell can be made to succeed (times=1) or fail for good
// (times≥2). The hook is called from concurrent workers; the counter is
// intentionally only advanced for the matching cell, which collection
// runs exactly once per attempt.
func PanicOn(scheme, env string, times int) func(scheme, env string) {
	fired := 0
	return func(s, e string) {
		if s == scheme && e == env && fired < times {
			fired++
			panic(fmt.Sprintf("chaos: injected worker panic in cell (%s, %s)", s, e))
		}
	}
}

// limitWriter passes through the first `left` bytes, then either errors
// (err != nil: ENOSPC) or silently truncates (err == nil: short write).
type limitWriter struct {
	w    io.Writer
	left int64
	err  error
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if l.left <= 0 {
		if l.err != nil {
			return 0, l.err
		}
		return len(p), nil // swallow: torn write
	}
	if int64(len(p)) > l.left {
		n, err := l.w.Write(p[:l.left])
		l.left -= int64(n)
		if err != nil {
			return n, err
		}
		if l.err != nil {
			return n, l.err
		}
		return len(p), nil
	}
	n, err := l.w.Write(p)
	l.left -= int64(n)
	return n, err
}
