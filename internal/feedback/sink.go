package feedback

import (
	"encoding/json"
	"math"
	"sync"

	"sage/internal/serve"
	"sage/internal/telemetry"
)

// WindowRecord is the JSON payload of one spool record: one session's
// completed decision window. States are the raw (unmasked) GR vectors;
// Actions[i] is the cwnd ratio applied on States[i]; Fallback lists the
// indices of steps served by the safety no-op path (ratio 1, recurrent
// state untouched) — kept sparse because fallbacks are rare in health.
type WindowRecord struct {
	SID      uint64      `json:"sid"`
	Reason   string      `json:"reason"`
	States   [][]float64 `json:"s"`
	Actions  []float64   `json:"a"`
	Fallback []int       `json:"fb,omitempty"`
}

// recordFromWindow flattens a trace window into its spool payload.
func recordFromWindow(w serve.TraceWindow) WindowRecord {
	rec := WindowRecord{SID: w.SID, Reason: w.Reason}
	for i, st := range w.Steps {
		rec.States = append(rec.States, st.State)
		rec.Actions = append(rec.Actions, st.Ratio)
		if st.Fallback {
			rec.Fallback = append(rec.Fallback, i)
		}
	}
	return rec
}

// SinkConfig tunes a SpoolSink.
type SinkConfig struct {
	Dir          string
	SegmentBytes int64 // per-segment cap before rotation (0 = DefaultSegmentBytes)
	Queue        int   // buffered windows between engine and disk (default 256)
	Metrics      *telemetry.Registry
}

// SpoolSink adapts a Spool to serve.TraceSink: the engine's export call
// enqueues onto a bounded channel and returns immediately; a single
// writer goroutine marshals and appends. When the queue is full the
// window is dropped and counted (feedback.spool_dropped) — the serving
// plane never blocks on the feedback plane's disk.
type SpoolSink struct {
	spool   *Spool
	metrics *telemetry.Registry
	ch      chan serve.TraceWindow
	done    chan struct{}
	once    sync.Once
}

// NewSpoolSink opens the spool and starts the writer goroutine.
func NewSpoolSink(cfg SinkConfig) (*SpoolSink, error) {
	sp, err := OpenSpool(cfg.Dir, cfg.SegmentBytes)
	if err != nil {
		return nil, err
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	s := &SpoolSink{
		spool:   sp,
		metrics: cfg.Metrics,
		ch:      make(chan serve.TraceWindow, cfg.Queue),
		done:    make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// ExportWindow implements serve.TraceSink. Never blocks.
func (s *SpoolSink) ExportWindow(w serve.TraceWindow) {
	select {
	case s.ch <- w:
	default:
		s.metrics.Counter(MetricSpoolDropped).Inc()
	}
}

func (s *SpoolSink) run() {
	defer close(s.done)
	for w := range s.ch {
		if !finiteWindow(w) {
			// JSON cannot carry NaN/Inf and such a window holds no usable
			// observation anyway; the engine already filters per-step, so
			// this is a second line of defense, not a code path.
			s.metrics.Counter(MetricSpoolDropped).Inc()
			continue
		}
		payload, err := json.Marshal(recordFromWindow(w))
		if err != nil {
			s.metrics.Counter(MetricSpoolDropped).Inc()
			continue
		}
		if err := s.spool.Append(payload); err != nil {
			s.metrics.Counter(MetricSpoolDropped).Inc()
			continue
		}
		s.metrics.Counter(MetricSpooled).Inc()
		s.metrics.Counter(MetricSpoolBytes).Add(int64(len(payload)) + 10)
		s.metrics.Gauge(MetricSpoolSegments).Set(float64(s.spool.Segment()))
	}
}

// Close drains the queue to disk and closes the spool. Call after the
// engine has drained (serve.Engine.Close) so every flushed window lands.
func (s *SpoolSink) Close() error {
	s.once.Do(func() { close(s.ch) })
	<-s.done
	return s.spool.Close()
}

func finiteWindow(w serve.TraceWindow) bool {
	for _, st := range w.Steps {
		if math.IsNaN(st.Ratio) || math.IsInf(st.Ratio, 0) {
			return false
		}
		for _, x := range st.State {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
	}
	return true
}
