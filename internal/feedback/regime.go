package feedback

import "math"

// Traffic regimes. Live windows are classified from their own GR signals
// (no ground truth exists for live flows) so admission can keep the pool
// balanced: one hot regime in production must not crowd out experience
// from the others. The heuristics key off the same raw state fields the
// policy sees — see internal/gr/monitor.go for the vector layout.
const (
	RegimeLossy       = "lossy"       // sustained non-congestion-scale loss
	RegimeBufferbloat = "bufferbloat" // sRTT inflated well past the propagation floor
	RegimeFlappy      = "flappy"      // delivery rate swinging hard interval to interval
	RegimeSteady      = "steady"      // none of the above
)

// Regimes lists every regime a window can classify into.
func Regimes() []string {
	return []string{RegimeLossy, RegimeBufferbloat, RegimeFlappy, RegimeSteady}
}

// State vector indices used by classification and reward labeling
// (0-based; the monitor's comments count from 1).
const (
	idxSRTTMs    = 0  // instantaneous smoothed RTT, ms
	idxSRTTLgMin = 11 // min sRTT over the Large window, ms — propagation floor proxy
	idxLossMbps  = 60 // loss rate this interval, Mbps
	idxDRMbps    = 64 // delivery rate, Mbps
	idxDRMaxMbps = 66 // max delivery rate seen, Mbps — capacity proxy
)

// Classification thresholds.
const (
	lossyFrac        = 0.005 // >0.5% of bytes lost marks a lossy path
	bufferbloatRatio = 2.0   // mean sRTT at 2x the floor marks a standing queue
	flappyCV         = 0.5   // delivery-rate coefficient of variation
)

// ClassifyRegime buckets one window of raw states. Priority order is
// lossy > bufferbloat > flappy: loss is the strongest signal (and a
// bloated lossy link should pool with lossy experience), while flappiness
// is the residual "nothing stable" bucket above steady.
func ClassifyRegime(states [][]float64) string {
	if len(states) == 0 {
		return RegimeSteady
	}
	var lossSum, drSum, drSq, srttSum float64
	floor := math.Inf(1)
	for _, s := range states {
		if len(s) <= idxDRMaxMbps {
			continue
		}
		lossSum += s[idxLossMbps]
		drSum += s[idxDRMbps]
		drSq += s[idxDRMbps] * s[idxDRMbps]
		srttSum += s[idxSRTTMs]
		if f := s[idxSRTTLgMin]; f > 0 && f < floor {
			floor = f
		}
	}
	n := float64(len(states))
	meanLoss, meanDR, meanSRTT := lossSum/n, drSum/n, srttSum/n
	if total := meanDR + meanLoss; total > 0 && meanLoss/total > lossyFrac {
		return RegimeLossy
	}
	if !math.IsInf(floor, 1) && floor > 0 && meanSRTT/floor > bufferbloatRatio {
		return RegimeBufferbloat
	}
	if meanDR > 0 {
		variance := drSq/n - meanDR*meanDR
		if variance > 0 && math.Sqrt(variance)/meanDR > flappyCV {
			return RegimeFlappy
		}
	}
	return RegimeSteady
}
