package feedback

import (
	"context"
	"testing"

	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/promote"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

type loopDirs struct{ spool, state, registry string }

func newLoopDirs(t *testing.T) loopDirs {
	return loopDirs{spool: t.TempDir(), state: t.TempDir(), registry: t.TempDir()}
}

func testLoopConfig(d loopDirs) LoopConfig {
	return LoopConfig{
		SpoolDir: d.spool, StateDir: d.state, RegistryDir: d.registry,
		Mask: testMask, GR: gr.Config{}.Fill(),
		MinAdmitted: 2, MinRegimes: 1,
		CRR: tinyCRR(4), CheckpointEvery: 1,
		Gate:    promote.GateConfig{Buckets: loopGateScenes(), Duration: sim.Second},
		Metrics: telemetry.NewRegistry(),
	}
}

// loopGateScenes is a minimal two-bucket suite so second-round gate runs
// stay cheap.
func loopGateScenes() []netem.Scenario {
	mk := func(name string) netem.Scenario {
		mrtt := 20 * sim.Millisecond
		return netem.Scenario{
			Name: name, Rate: netem.FlatRate(netem.Mbps(24)),
			MinRTT: mrtt, QueueBytes: netem.BDPBytes(netem.Mbps(24), mrtt),
			Duration: sim.Second,
		}
	}
	return []netem.Scenario{mk("flat-a"), mk("step-b")}
}

func spoolTriggerWindows(t *testing.T, dir string, base uint64) {
	t.Helper()
	spoolWindows(t, dir,
		regimeWindow(base+1, RegimeSteady, 8),
		regimeWindow(base+2, RegimeLossy, 8),
		regimeWindow(base+3, RegimeFlappy, 8),
	)
}

type killAt struct{ stage string }

// stepExpectKill runs Step and asserts the kill seam fired at the target
// stage; the Loop is abandoned un-Closed, like a real SIGKILL.
func stepExpectKill(t *testing.T, lp *Loop, stage string) {
	t.Helper()
	defer func() {
		r := recover()
		k, ok := r.(killAt)
		if !ok {
			t.Fatalf("expected kill at %q, recovered %v", stage, r)
		}
		if k.stage != stage {
			t.Fatalf("killed at %q, want %q", k.stage, stage)
		}
	}()
	lp.Step(context.Background())
	t.Fatalf("kill at %q never fired", stage)
}

// The tentpole invariant: SIGKILL at every stage boundary, then resume —
// the loop still lands exactly one promoted candidate, accounting
// balances, and nothing is published or journaled twice.
func TestLoopKillAtEveryStageResumes(t *testing.T) {
	for _, stage := range []string{StagePoll, StageRound, StageTrained, StagePublished, StageVerdict} {
		t.Run(stage, func(t *testing.T) {
			d := newLoopDirs(t)
			spoolTriggerWindows(t, d.spool, 0)

			cfg := testLoopConfig(d)
			cfg.Kill = func(s string) {
				if s == stage {
					panic(killAt{s})
				}
			}
			lp, err := OpenLoop(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stepExpectKill(t, lp, stage)

			// Resume from the journals alone.
			cfg.Kill = nil
			lp2, err := OpenLoop(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer lp2.Close()
			for i := 0; i < 3; i++ {
				done, err := lp2.Step(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
				if n, open := lp2.Round(); n == 1 && !open {
					break // verdict landed before the kill (StageVerdict)
				}
			}

			if n, open := lp2.Round(); n != 1 || open {
				t.Fatalf("round state = (%d, open=%v), want round 1 closed", n, open)
			}
			reg, err := promote.OpenRegistry(d.registry)
			if err != nil {
				t.Fatal(err)
			}
			inc, ok := reg.Incumbent()
			if !ok {
				t.Fatal("no incumbent after resumed loop")
			}
			if inc.Provenance != "sage-loop" {
				t.Fatalf("incumbent provenance %q, want sage-loop", inc.Provenance)
			}
			if models := reg.List(); len(models) != 1 {
				t.Fatalf("registry holds %d models, want exactly 1 (no duplicate publish)", len(models))
			}
			c := lp2.Ingester().Counts()
			if c.Ingested != 3 || c.Ingested != c.Admitted+c.Quarantined+c.Skipped {
				t.Fatalf("accounting after kill/resume: %+v", c)
			}
		})
	}
}

// With an incumbent installed, the next round replays live windows
// through the shadow and runs the dominance gate; either verdict closes
// the round and journals the decision.
func TestLoopSecondRoundRunsGate(t *testing.T) {
	d := newLoopDirs(t)
	spoolTriggerWindows(t, d.spool, 0)
	cfg := testLoopConfig(d)
	lp, err := OpenLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := lp.Step(context.Background()); err != nil || !done {
		t.Fatalf("first round: done=%v err=%v", done, err)
	}

	spoolTriggerWindows(t, d.spool, 10)
	done, err := lp.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("second round did not reach a verdict")
	}
	if n, open := lp.Round(); n != 2 || open {
		t.Fatalf("round state = (%d, open=%v), want round 2 closed", n, open)
	}
	lp.Close()

	reg, err := promote.OpenRegistry(d.registry)
	if err != nil {
		t.Fatal(err)
	}
	models := reg.List()
	if len(models) != 2 {
		t.Fatalf("registry holds %d models, want 2", len(models))
	}
	gated := 0
	for _, m := range models {
		switch m.State {
		case promote.StateIncumbent, promote.StateRejected, promote.StateRetired:
			gated++
		default:
			t.Fatalf("model %s in state %s after verdict", m.ID, m.State)
		}
	}
	if gated != 2 {
		t.Fatalf("gated transitions = %d, want 2", gated)
	}
	if _, ok := reg.Incumbent(); !ok {
		t.Fatal("no incumbent after second round")
	}
}

// A quiescent loop (no new admissions since the last round) never starts
// a round: MinAdmitted counts fresh experience, not pool residue.
func TestLoopTriggerNeedsFreshAdmissions(t *testing.T) {
	d := newLoopDirs(t)
	spoolTriggerWindows(t, d.spool, 0)
	cfg := testLoopConfig(d)
	lp, err := OpenLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	if done, err := lp.Step(context.Background()); err != nil || !done {
		t.Fatalf("trigger round: done=%v err=%v", done, err)
	}
	// Nothing new in the spool: no round 2.
	for i := 0; i < 2; i++ {
		if done, err := lp.Step(context.Background()); err != nil || done {
			t.Fatalf("idle step %d: done=%v err=%v, want no round", i, done, err)
		}
	}
	if n, _ := lp.Round(); n != 1 {
		t.Fatalf("round advanced to %d while idle", n)
	}
}
