package feedback

import (
	"sage/internal/gr"
	"sage/internal/sim"
)

// LabelWindow converts one spooled window into reward-labeled GR steps.
//
// Live traffic carries no emulator ground truth (no known bottleneck
// capacity or propagation RTT), so the reward is the paper's R1 computed
// from proxies the window itself provides: delivery and loss rates are in
// the state vector, the propagation RTT is estimated as the smallest
// large-window sRTT minimum seen, and capacity as the largest
// max-delivery-rate seen. The proxies are conservative — a window that
// never saturated its path under-reports capacity, which *deflates* its
// rewards rather than inventing headroom — and they are consistent within
// a window, which is what relative action ranking needs.
func LabelWindow(rec WindowRecord, grc gr.Config) []gr.Step {
	grc = grc.Fill()
	minRTTms := 0.0
	capMbps := 0.0
	for _, s := range rec.States {
		if len(s) <= idxDRMaxMbps {
			continue
		}
		if f := s[idxSRTTLgMin]; f > 0 && (minRTTms == 0 || f < minRTTms) {
			minRTTms = f
		}
		if c := s[idxDRMaxMbps]; c > capMbps {
			capMbps = c
		}
	}
	minRTT := sim.FromMillis(minRTTms)
	capBps := capMbps * 1e6
	steps := make([]gr.Step, 0, len(rec.States))
	for i, s := range rec.States {
		var reward float64
		if len(s) > idxDRMaxMbps {
			reward = gr.R1(
				s[idxDRMbps]*1e6, s[idxLossMbps]*1e6, capBps,
				sim.FromMillis(s[idxSRTTMs]), minRTT,
				grc.Xi, grc.Kappa,
			)
		}
		steps = append(steps, gr.Step{State: s, Action: rec.Actions[i], Reward: reward})
	}
	return steps
}
