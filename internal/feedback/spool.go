package feedback

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"sage/internal/safeio"
)

// Spool metric names (writer side; the tailer's accounting lives in the
// ingest journal, not in counters).
const (
	MetricSpooled       = "feedback.spooled"
	MetricSpoolBytes    = "feedback.spool_bytes"
	MetricSpoolSegments = "feedback.spool_segments"
	MetricSpoolDropped  = "feedback.spool_dropped"
)

// DefaultSegmentBytes caps one spool segment before rotation.
const DefaultSegmentBytes = 4 << 20

// segName formats the file name of segment n.
func segName(n int) string { return fmt.Sprintf("spool-%08d.seg", n) }

// ListSegments returns the segment numbers present in dir, ascending.
// A missing directory reads as empty: the writer may not have started.
func ListSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "spool-%d.seg", &n); err == nil && e.Name() == segName(n) {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// Cursor addresses a position in the spool: byte offset Off into segment
// Seg. The zero cursor is "before everything"; TailSpool normalizes it to
// the first segment present.
type Cursor struct {
	Seg int   `json:"seg"`
	Off int64 `json:"off"`
}

func (c Cursor) String() string { return fmt.Sprintf("%d:%d", c.Seg, c.Off) }

// Spool is the writer: an append-only sequence of safeio.AppendLog
// segments, rotated at a byte cap so retention and tailing work in
// segment-sized units. One record is one exported trace window. Each
// segment inherits AppendLog's crash discipline — fsync per append,
// checksummed records, flock against concurrent repair — so a reader
// tailing a live spool (TailSpool) never observes a torn record.
// Not safe for concurrent use by multiple goroutines (SpoolSink serializes).
type Spool struct {
	dir     string
	maxSeg  int64
	seg     int
	log     *safeio.AppendLog
	segSize int64
}

// OpenSpool opens (creating if needed) the spool in dir for appending,
// resuming on the highest existing segment. maxSegBytes <= 0 selects
// DefaultSegmentBytes. Opening repairs a crash-torn tail on the resumed
// segment under AppendLog's exclusive flock.
func OpenSpool(dir string, maxSegBytes int64) (*Spool, error) {
	if maxSegBytes <= 0 {
		maxSegBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	cur := 1
	if len(segs) > 0 {
		cur = segs[len(segs)-1]
	}
	s := &Spool{dir: dir, maxSeg: maxSegBytes, seg: cur}
	if err := s.openSeg(cur); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Spool) openSeg(n int) error {
	log, _, err := safeio.OpenAppendLog(filepath.Join(s.dir, segName(n)), nil)
	if err != nil {
		return err
	}
	s.log, s.seg, s.segSize = log, n, log.Offset()
	return nil
}

// Segment reports the segment currently being appended to.
func (s *Spool) Segment() int { return s.seg }

// Append writes one record, rotating to a fresh segment first when the
// current one is at its byte cap. Durable (fsynced) before returning.
func (s *Spool) Append(payload []byte) error {
	rec := int64(len(payload)) + 10 // "<crc8> " prefix + '\n'
	if s.segSize > 0 && s.segSize+rec > s.maxSeg {
		if err := s.log.Close(); err != nil {
			return err
		}
		if err := s.openSeg(s.seg + 1); err != nil {
			return err
		}
	}
	if err := s.log.Append(payload); err != nil {
		return err
	}
	s.segSize += rec
	return nil
}

// Close closes the current segment.
func (s *Spool) Close() error { return s.log.Close() }

// TailSpool streams every intact record at or after cursor from to fn, in
// commit order, and returns the cursor just past the last record consumed.
// fn receives the cursor *after* the record — journaling that cursor and
// resuming from it later yields exactly-once consumption. fn returning
// false stops the tail early (the returned cursor still excludes the
// refused record, which will be re-delivered next call).
//
// Safe against a live writer: segments are opened read-only (never
// repaired), and a half-written tail on the newest segment reads as "no
// more data yet". A torn or checksum-failed record anywhere else cannot
// be an in-flight append and is reported as corruption.
func TailSpool(dir string, from Cursor, fn func(pos Cursor, payload []byte) bool) (Cursor, error) {
	segs, err := ListSegments(dir)
	if err != nil || len(segs) == 0 {
		return from, err
	}
	cur := from
	if cur.Seg == 0 {
		cur = Cursor{Seg: segs[0]}
	}
	last := segs[len(segs)-1]
	for cur.Seg <= last {
		path := filepath.Join(dir, segName(cur.Seg))
		log, err := safeio.OpenAppendLogReader(path)
		if errors.Is(err, fs.ErrNotExist) {
			// A gap below the newest segment would mean spool truncation
			// under our cursor; an absent newest segment cannot happen
			// (ListSegments just saw it).
			return cur, fmt.Errorf("feedback: spool segment %d vanished under cursor %s: %w", cur.Seg, cur, safeio.ErrLogCorrupt)
		}
		if err != nil {
			return cur, err
		}
		stop := false
		off, rerr := log.ReplayFrom(cur.Off, func(payload []byte) {
			if stop {
				return
			}
			next := Cursor{Seg: cur.Seg, Off: cur.Off + int64(len(payload)) + 10}
			if !fn(next, payload) {
				stop = true
				return
			}
			cur = next
		})
		size := int64(-1)
		if fi, serr := log.Stat(); serr == nil {
			size = fi.Size()
		}
		log.Close()
		if rerr != nil {
			return cur, fmt.Errorf("feedback: tail %s: %w", segName(cur.Seg), rerr)
		}
		if stop {
			return cur, nil
		}
		if cur.Seg == last {
			return cur, nil // drained up to the writer's live tail
		}
		if size >= 0 && off < size {
			// Leftover bytes on a segment the writer already rotated past:
			// the writer repairs torn tails before ever rotating, so this
			// tail can never complete. Surface it rather than stall forever.
			return cur, fmt.Errorf("feedback: torn tail on rotated segment %d (offset %d, size %d): %w", cur.Seg, off, size, safeio.ErrLogCorrupt)
		}
		cur = Cursor{Seg: cur.Seg + 1}
	}
	return cur, nil
}
