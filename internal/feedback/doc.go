// Package feedback closes the learning loop: it streams live serving
// experience back into training and publishes the result for promotion.
//
// The pipeline has four stages, each resumable after SIGKILL:
//
//	serve  —  serve.Engine sessions export completed decision windows
//	          (raw GR state, applied cwnd ratio, fallback flag) through a
//	          SpoolSink into size-capped, crash-safe append-only spool
//	          segments (Spool / TailSpool).
//	ingest —  an Ingester tails the spool, labels each window with a
//	          proxy reward and a traffic regime, runs it through the
//	          collector quality gate, and admits survivors into a
//	          regime-balanced live experience pool. Every spool record
//	          gets exactly one disposition — admitted, quarantined, or
//	          skipped — journaled with the spool cursor, so a killed and
//	          restarted ingester neither drops nor duplicates a window.
//	retrain — when admission thresholds are met, a sentinel-guarded
//	          incremental CRR run retrains from the incumbent's weights
//	          on a seeded mix of live and offline experience.
//	publish — the trained candidate is journaled into the promote
//	          registry; the shadow statistics gathered from the live
//	          windows feed the dominance gate, which decides promotion.
//
// The Loop type strings the stages into the sage-loop daemon; every stage
// reports feedback.* telemetry.
package feedback
