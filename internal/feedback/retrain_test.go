package feedback

import (
	"context"
	"strings"
	"testing"

	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/promote"
	"sage/internal/rl"
)

var testMask = []int{idxSRTTMs, idxSRTTLgMin, idxLossMbps, idxDRMbps, idxDRMaxMbps}

func tinyCRR(steps int) rl.CRRConfig {
	return rl.CRRConfig{
		Policy: nn.PolicyConfig{Enc: 8, Hidden: 4, ResBlocks: 1, K: 2},
		Critic: nn.CriticConfig{Hidden: 8, Atoms: 5},
		Steps:  steps, Batch: 2, SeqLen: 2, Seed: 7,
	}
}

// syntheticPool labels regime windows into a training pool.
func syntheticPool(scheme string, n, steps int) *collector.Pool {
	p := &collector.Pool{GR: gr.Config{}.Fill()}
	regimes := Regimes()
	for i := 0; i < n; i++ {
		rec := regimeWindow(uint64(i+1), regimes[i%len(regimes)], steps)
		p.Trajs = append(p.Trajs, collector.Trajectory{
			Scheme: scheme, Env: scheme + "-" + regimes[i%len(regimes)],
			Steps: LabelWindow(rec, p.GR),
		})
	}
	return p
}

func TestMixPools(t *testing.T) {
	live := syntheticPool("live", 4, 8)
	offline := syntheticPool("offline", 12, 8)

	mixed := MixPools(offline, live, 0.5, 42)
	liveN, offN := 0, 0
	for _, tr := range mixed.Trajs {
		if strings.HasPrefix(tr.Scheme, "live") {
			liveN++
		} else {
			offN++
		}
	}
	if liveN != 4 {
		t.Fatalf("mix dropped live trajectories: %d/4", liveN)
	}
	if offN != 4 { // 50/50 target: offline complement matches live count
		t.Fatalf("offline complement = %d, want 4", offN)
	}

	// Deterministic under the same seed — a re-mixed killed round must
	// rebuild the identical pool.
	again := MixPools(offline, live, 0.5, 42)
	if len(again.Trajs) != len(mixed.Trajs) {
		t.Fatal("re-mix changed size")
	}
	for i := range mixed.Trajs {
		if mixed.Trajs[i].Env != again.Trajs[i].Env || len(mixed.Trajs[i].Steps) != len(again.Trajs[i].Steps) {
			t.Fatalf("re-mix diverged at %d", i)
		}
	}

	if lo := MixPools(nil, live, 0.5, 1); len(lo.Trajs) != 4 {
		t.Fatalf("live-only mix = %d trajs, want 4", len(lo.Trajs))
	}
}

// Warm start seeds the round's learner from the incumbent: with zero
// gradient steps the trained candidate IS the incumbent, fingerprint and
// all; without warm start it is a fresh initialization.
func TestRetrainRoundWarmStart(t *testing.T) {
	live := syntheticPool("live", 4, 8)
	inc := &core.Model{
		Policy: nn.NewPolicy(nn.PolicyConfig{InDim: len(testMask), Enc: 8, Hidden: 4, ResBlocks: 1, K: 2, Seed: 99}),
		Mask:   testMask, GR: live.GR,
	}
	incFP := promote.Fingerprint(inc)

	warm, err := RetrainRound(context.Background(), RetrainConfig{
		WorkDir: t.TempDir(), Round: 1, Live: live, Mask: testMask,
		CRR: tinyCRR(0), Incumbent: inc, WarmStart: true, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp := promote.Fingerprint(warm); fp != incFP {
		t.Fatalf("warm-started candidate fingerprint %s != incumbent %s", fp, incFP)
	}

	cold, err := RetrainRound(context.Background(), RetrainConfig{
		WorkDir: t.TempDir(), Round: 1, Live: live, Mask: testMask,
		CRR: tinyCRR(0), Incumbent: inc, WarmStart: false, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp := promote.Fingerprint(cold); fp == incFP {
		t.Fatal("cold start reproduced the incumbent's parameters")
	}
}

// The keystone of publish idempotence: a round killed mid-training and
// resumed converges to bitwise-identical parameters — the same registry
// fingerprint — as a round that ran straight through.
func TestRetrainRoundResumeIsDeterministic(t *testing.T) {
	live := syntheticPool("live", 4, 8)
	const steps = 6

	straight, err := RetrainRound(context.Background(), RetrainConfig{
		WorkDir: t.TempDir(), Round: 3, Live: live, Mask: testMask,
		CRR: tinyCRR(steps), CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Killed run: cancel after step 3, then resume to completion in the
	// same workdir.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	_, err = RetrainRound(ctx, RetrainConfig{
		WorkDir: dir, Round: 3, Live: live, Mask: testMask,
		CRR: tinyCRR(steps), CheckpointEvery: 2,
		Progress: func(step int, _, _ float64) {
			if step >= 3 {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatal("interrupted round reported success")
	}
	resumed, err := RetrainRound(context.Background(), RetrainConfig{
		WorkDir: dir, Round: 3, Live: live, Mask: testMask,
		CRR: tinyCRR(steps), CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := promote.Fingerprint(straight), promote.Fingerprint(resumed); a != b {
		t.Fatalf("resumed round fingerprint %s != straight-through %s", b, a)
	}
}

// ReplayShadow reproduces live windows through a candidate's shadow
// evaluator: every admitted step is observed and fallback steps are
// excluded from divergence.
func TestReplayShadow(t *testing.T) {
	spoolDir, stateDir := t.TempDir(), t.TempDir()
	w := regimeWindow(1, RegimeSteady, 6)
	w.Fallback = []int{2} // one safety-path step: observed, not diverged
	spoolWindows(t, spoolDir, w, regimeWindow(2, RegimeLossy, 6))
	in, _ := newTestIngester(t, spoolDir, stateDir, 0)
	defer in.Close()
	if _, err := in.Poll(); err != nil {
		t.Fatal(err)
	}

	cand := &core.Model{
		Policy: nn.NewPolicy(nn.PolicyConfig{InDim: len(testMask), Enc: 8, Hidden: 4, ResBlocks: 1, K: 2, Seed: 5}),
		Mask:   testMask, GR: gr.Config{}.Fill(),
	}
	sh := promote.NewShadow(cand, promote.ShadowConfig{})
	in.ReplayShadow(sh)
	st := sh.Stats()
	if st.Observed != 12 {
		t.Fatalf("shadow observed %d steps, want 12", st.Observed)
	}
	if st.Mirrored != 11 {
		t.Fatalf("shadow mirrored %d steps, want 11 (fallback step excluded)", st.Mirrored)
	}
	if st.Fallbacks != 1 {
		t.Fatalf("shadow counted %d fallbacks, want 1", st.Fallbacks)
	}
	if len(st.PerRegime) != 2 {
		t.Fatalf("per-regime divergence buckets = %v, want 2", st.PerRegime)
	}
}
