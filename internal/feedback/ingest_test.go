package feedback

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"sage/internal/telemetry"
)

// stVec builds a full-width GR state vector with the fields classification
// and labeling read.
func stVec(srttMs, floorMs, lossMbps, drMbps, drMaxMbps float64) []float64 {
	s := make([]float64, 69)
	s[idxSRTTMs] = srttMs
	s[idxSRTTLgMin] = floorMs
	s[idxLossMbps] = lossMbps
	s[idxDRMbps] = drMbps
	s[idxDRMaxMbps] = drMaxMbps
	return s
}

// regimeWindow builds an n-step window that classifies into the given
// regime and passes the quality gate.
func regimeWindow(sid uint64, regime string, n int) WindowRecord {
	rec := WindowRecord{SID: sid, Reason: "close"}
	for i := 0; i < n; i++ {
		jit := float64(i) * 0.01
		var s []float64
		switch regime {
		case RegimeLossy:
			s = stVec(20+jit, 20, 2, 50, 60)
		case RegimeBufferbloat:
			s = stVec(80+jit, 20, 0, 50, 60)
		case RegimeFlappy:
			dr := 10.0
			if i%2 == 1 {
				dr = 90
			}
			s = stVec(20+jit, 20, 0, dr, 95)
		default: // steady
			s = stVec(20+jit, 20, 0, 50, 60)
		}
		rec.States = append(rec.States, s)
		rec.Actions = append(rec.Actions, 1.0+jit)
	}
	return rec
}

func spoolWindows(t *testing.T, dir string, recs ...WindowRecord) {
	t.Helper()
	sp, err := OpenSpool(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

func newTestIngester(t *testing.T, spoolDir, stateDir string, quota int) (*Ingester, *telemetry.Registry) {
	t.Helper()
	m := telemetry.NewRegistry()
	in, err := OpenIngester(IngestConfig{
		SpoolDir: spoolDir, StateDir: stateDir,
		QuotaPerRegime: quota, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in, m
}

// Every spool record gets exactly one disposition and the accounting
// identity holds: ingested == admitted + quarantined + skipped.
// Quarantined windows increment feedback.quarantined and never reach the
// pool; fallback-dominated windows are skipped, not trained on.
func TestIngestAccountingBalances(t *testing.T) {
	spoolDir, stateDir := t.TempDir(), t.TempDir()
	regimes := Regimes()
	var recs []WindowRecord
	for i, r := range regimes {
		recs = append(recs, regimeWindow(uint64(i+1), r, 4))
	}
	// One quarantine candidate (single step = truncated episode) and one
	// skip candidate (3 of 4 steps on the fallback path).
	recs = append(recs, regimeWindow(90, RegimeSteady, 1))
	skip := regimeWindow(91, RegimeSteady, 4)
	skip.Fallback = []int{0, 1, 2}
	recs = append(recs, skip)
	spoolWindows(t, spoolDir, recs...)

	in, m := newTestIngester(t, spoolDir, stateDir, 0)
	defer in.Close()
	n, err := in.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("polled %d records, want %d", n, len(recs))
	}

	c := in.Counts()
	if c.Ingested != 6 || c.Admitted != 4 || c.Quarantined != 1 || c.Skipped != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Ingested != c.Admitted+c.Quarantined+c.Skipped {
		t.Fatalf("accounting identity broken: %+v", c)
	}
	if got := m.Counter(MetricQuarantined).Value(); got != 1 {
		t.Fatalf("feedback.quarantined = %d, want 1", got)
	}
	if got := m.Counter(MetricSkipped).Value(); got != 1 {
		t.Fatalf("feedback.skipped = %d, want 1", got)
	}

	byRegime := in.PoolByRegime()
	total := 0
	for _, r := range regimes {
		if byRegime[r] != 1 {
			t.Fatalf("pool[%s] = %d, want 1 (by-regime: %v)", r, byRegime[r], byRegime)
		}
		total += byRegime[r]
	}
	if total != 4 {
		t.Fatalf("pool holds %d windows, want 4 — quarantined/skipped leaked in", total)
	}
	if pool := in.LivePool(); len(pool.Trajs) != 4 {
		t.Fatalf("live pool has %d trajectories, want 4", len(pool.Trajs))
	}
}

// Satellite: one hot regime cannot crowd out the others. Flooding the
// pool with steady windows keeps steady at its quota (freshest retained)
// and leaves other regimes' entries untouched.
func TestIngestRegimeQuotaUnderFlood(t *testing.T) {
	spoolDir, stateDir := t.TempDir(), t.TempDir()
	recs := []WindowRecord{regimeWindow(1, RegimeBufferbloat, 4)}
	for i := 0; i < 10; i++ {
		recs = append(recs, regimeWindow(uint64(10+i), RegimeSteady, 4))
	}
	spoolWindows(t, spoolDir, recs...)

	in, m := newTestIngester(t, spoolDir, stateDir, 3)
	if _, err := in.Poll(); err != nil {
		t.Fatal(err)
	}

	byRegime := in.PoolByRegime()
	if byRegime[RegimeSteady] != 3 || byRegime[RegimeBufferbloat] != 1 {
		t.Fatalf("by-regime after flood = %v, want steady 3 / bufferbloat 1", byRegime)
	}
	c := in.Counts()
	if c.Admitted != 11 || c.Evicted != 7 {
		t.Fatalf("admitted %d evicted %d, want 11/7", c.Admitted, c.Evicted)
	}
	if got := m.Counter(MetricPoolEvicted).Value(); got != 7 {
		t.Fatalf("feedback.pool_evicted = %d, want 7", got)
	}
	// Freshness-weighted: the retained steady windows are the newest three.
	wantSIDs := map[uint64]bool{17: true, 18: true, 19: true}
	for _, e := range in.pool[RegimeSteady] {
		if !wantSIDs[e.SID] {
			t.Fatalf("retained stale steady window sid %d, want the newest 3", e.SID)
		}
	}
	in.Close()

	// Replay rebuilds the identical pool: deterministic quota re-eviction.
	in2, _ := newTestIngester(t, spoolDir, stateDir, 3)
	defer in2.Close()
	byRegime2 := in2.PoolByRegime()
	if byRegime2[RegimeSteady] != 3 || byRegime2[RegimeBufferbloat] != 1 {
		t.Fatalf("replayed by-regime = %v", byRegime2)
	}
	for _, e := range in2.pool[RegimeSteady] {
		if !wantSIDs[e.SID] {
			t.Fatalf("replay retained stale steady window sid %d", e.SID)
		}
	}
	if c2 := in2.Counts(); c2.Evicted != 7 {
		t.Fatalf("replayed evicted = %d, want 7", c2.Evicted)
	}
}

// A reopened ingester resumes from the journaled cursor: nothing is
// reprocessed, new records are picked up exactly once.
func TestIngestResumeExactlyOnce(t *testing.T) {
	spoolDir, stateDir := t.TempDir(), t.TempDir()
	spoolWindows(t, spoolDir,
		regimeWindow(1, RegimeSteady, 4),
		regimeWindow(2, RegimeLossy, 4),
		regimeWindow(3, RegimeFlappy, 4),
	)

	in, _ := newTestIngester(t, spoolDir, stateDir, 0)
	if n, err := in.Poll(); err != nil || n != 3 {
		t.Fatalf("first poll = %d, %v", n, err)
	}
	before := in.Counts()
	in.Close()

	in2, _ := newTestIngester(t, spoolDir, stateDir, 0)
	defer in2.Close()
	if got := in2.Counts(); got.Admitted != before.Admitted || got.Ingested != before.Ingested {
		t.Fatalf("replayed counts %+v, want %+v", got, before)
	}
	if n, err := in2.Poll(); err != nil || n != 0 {
		t.Fatalf("re-poll processed %d records, want 0 (no reprocessing)", n)
	}

	spoolWindows(t, spoolDir, regimeWindow(4, RegimeBufferbloat, 4))
	if n, err := in2.Poll(); err != nil || n != 1 {
		t.Fatalf("poll after new window = %d, %v", n, err)
	}
	if c := in2.Counts(); c.Ingested != 4 || c.Admitted != 4 {
		t.Fatalf("final counts %+v", c)
	}
}

// The pool-log-then-journal crash window: a SIGKILL after the live pool
// log append but before the journal append leaves an orphan entry. The
// reopened ingester must adopt it — the record is reprocessed and
// journaled, but NOT appended to the pool log a second time.
func TestIngestOrphanPoolEntryAdopted(t *testing.T) {
	spoolDir, stateDir := t.TempDir(), t.TempDir()
	spoolWindows(t, spoolDir,
		regimeWindow(1, RegimeSteady, 4),
		regimeWindow(2, RegimeLossy, 4),
	)
	in, _ := newTestIngester(t, spoolDir, stateDir, 0)
	if n, err := in.Poll(); err != nil || n != 2 {
		t.Fatalf("poll = %d, %v", n, err)
	}

	// Window 3 arrives; simulate the crash: append its pool-log entry by
	// hand (what ingestOne does first) and die before journaling.
	w3 := regimeWindow(3, RegimeBufferbloat, 4)
	spoolWindows(t, spoolDir, w3)
	var orphanKey Cursor
	var orphanPayload []byte
	if _, err := TailSpool(spoolDir, in.Cursor(), func(pos Cursor, payload []byte) bool {
		orphanKey, orphanPayload = pos, append([]byte(nil), payload...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var rec WindowRecord
	if err := json.Unmarshal(orphanPayload, &rec); err != nil {
		t.Fatal(err)
	}
	e := liveEntry{
		Key: orphanKey, Regime: ClassifyRegime(rec.States), SID: rec.SID,
		Reason: rec.Reason, Steps: LabelWindow(rec, in.cfg.GR),
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.liveLog.Append(b); err != nil {
		t.Fatal(err)
	}
	in.Close() // "crash" before journaling

	in2, _ := newTestIngester(t, spoolDir, stateDir, 0)
	if c := in2.Counts(); c.Admitted != 2 {
		t.Fatalf("orphan counted before journaling: %+v", c)
	}
	if !in2.pending[orphanKey] {
		t.Fatal("orphan entry not adopted as pending")
	}
	if n, err := in2.Poll(); err != nil || n != 1 {
		t.Fatalf("resume poll = %d, %v", n, err)
	}
	if c := in2.Counts(); c.Admitted != 3 || c.Ingested != 3 {
		t.Fatalf("counts after adoption = %+v, want 3 admitted", c)
	}
	if by := in2.PoolByRegime(); by[RegimeBufferbloat] != 1 {
		t.Fatalf("adopted window missing from pool: %v", by)
	}
	in2.Close()

	// The pool log must hold exactly one record per admitted window — the
	// orphan was adopted, not appended again.
	logN := 0
	ll, err := openLog(filepath.Join(stateDir, livePoolLogName), func([]byte) { logN++ })
	if err != nil {
		t.Fatal(err)
	}
	ll.Close()
	if logN != 3 {
		t.Fatalf("pool log holds %d records, want 3 (no duplicate for the orphan)", logN)
	}
}
