package feedback

import (
	"math"
	"testing"

	"sage/internal/gr"
)

func TestClassifyRegime(t *testing.T) {
	cases := []struct {
		name string
		rec  WindowRecord
		want string
	}{
		{"steady", regimeWindow(1, RegimeSteady, 6), RegimeSteady},
		{"lossy", regimeWindow(2, RegimeLossy, 6), RegimeLossy},
		{"bufferbloat", regimeWindow(3, RegimeBufferbloat, 6), RegimeBufferbloat},
		{"flappy", regimeWindow(4, RegimeFlappy, 6), RegimeFlappy},
	}
	for _, c := range cases {
		if got := ClassifyRegime(c.rec.States); got != c.want {
			t.Errorf("%s window classified %q", c.name, got)
		}
	}
	if got := ClassifyRegime(nil); got != RegimeSteady {
		t.Errorf("empty window classified %q, want steady", got)
	}
	// A lossy AND bloated window pools with lossy: loss outranks queueing.
	rec := regimeWindow(5, RegimeBufferbloat, 6)
	for _, s := range rec.States {
		s[idxLossMbps] = 2
	}
	if got := ClassifyRegime(rec.States); got != RegimeLossy {
		t.Errorf("lossy+bloated window classified %q, want lossy (priority)", got)
	}
}

// Proxy labeling: rewards are finite, every action is carried through,
// and a step at higher delivery with equal delay earns more than one at
// lower delivery — the ranking signal training needs.
func TestLabelWindowProxyRewards(t *testing.T) {
	rec := WindowRecord{SID: 1, Reason: "close"}
	rec.States = append(rec.States, stVec(20, 20, 0, 30, 60)) // slower
	rec.States = append(rec.States, stVec(20, 20, 0, 55, 60)) // faster, same delay
	rec.Actions = []float64{1.1, 0.9}

	steps := LabelWindow(rec, gr.Config{})
	if len(steps) != 2 {
		t.Fatalf("labeled %d steps, want 2", len(steps))
	}
	for i, s := range steps {
		if math.IsNaN(s.Reward) || math.IsInf(s.Reward, 0) {
			t.Fatalf("step %d reward %v", i, s.Reward)
		}
		if s.Action != rec.Actions[i] {
			t.Fatalf("step %d action %v, want %v", i, s.Action, rec.Actions[i])
		}
	}
	if steps[1].Reward <= steps[0].Reward {
		t.Fatalf("higher delivery rewarded less: %v <= %v", steps[1].Reward, steps[0].Reward)
	}
}
