package feedback

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sage/internal/safeio"
)

func appendAll(t *testing.T, sp *Spool, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := sp.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
}

func tailAll(t *testing.T, dir string, from Cursor) (rec []string, cur Cursor) {
	t.Helper()
	cur, err := TailSpool(dir, from, func(pos Cursor, payload []byte) bool {
		rec = append(rec, string(payload))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, cur
}

// Basic write → tail round trip, resuming from a mid-stream cursor.
func TestSpoolTailResume(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, sp, `{"a":1}`, `{"a":2}`, `{"a":3}`)

	got, cur := tailAll(t, dir, Cursor{})
	if len(got) != 3 || got[2] != `{"a":3}` {
		t.Fatalf("tail = %v", got)
	}

	// New records appear when tailing again from the returned cursor —
	// and only the new ones.
	appendAll(t, sp, `{"a":4}`)
	got, cur2 := tailAll(t, dir, cur)
	if len(got) != 1 || got[0] != `{"a":4}` {
		t.Fatalf("resumed tail = %v, want only the new record", got)
	}
	if cur2 == cur {
		t.Fatal("cursor did not advance")
	}
	sp.Close()
}

// Rotation: a byte cap splits records across segments; tailing walks the
// segment chain transparently and a writer reopen resumes on the newest.
func TestSpoolRotation(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, 40) // tiny cap: every record rotates
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf(`{"n":%d,"pad":"xxxxxxxxxxxxxxxx"}`, i)
		want = append(want, p)
		appendAll(t, sp, p)
	}
	sp.Close()

	segs, err := ListSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments = %v (err %v), want rotation", segs, err)
	}

	got, _ := tailAll(t, dir, Cursor{})
	if len(got) != len(want) {
		t.Fatalf("tail across segments = %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Reopen resumes the newest segment, not a fresh one.
	sp2, err := OpenSpool(dir, 40)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Segment() != segs[len(segs)-1] {
		t.Fatalf("reopen on segment %d, want %d", sp2.Segment(), segs[len(segs)-1])
	}
	sp2.Close()
}

// Satellite: byte-prefix torn-tail recovery, mirroring the registry
// journal tests. For EVERY byte-length prefix of a spool segment — every
// possible crash point of the writer — the tailer must return exactly the
// records whose commit completed, never an error and never a torn or
// phantom record; and a reopened writer must repair the tear and keep
// appending, with the tailer picking up seamlessly.
func TestSpoolTornTailEveryPrefix(t *testing.T) {
	master := t.TempDir()
	sp, err := OpenSpool(master, 0)
	if err != nil {
		t.Fatal(err)
	}
	payloads := []string{`{"w":1}`, `{"w":22}`, `{"w":333}`}
	appendAll(t, sp, payloads...)
	sp.Close()

	seg, err := os.ReadFile(filepath.Join(master, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	recLens := make([]int, len(payloads))
	for i, p := range payloads {
		recLens[i] = len(p) + 10
	}

	for n := 0; n <= len(seg); n++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		// How many records fit entirely in this prefix?
		complete, off := 0, 0
		for _, l := range recLens {
			if off+l <= n {
				complete++
				off += l
			}
		}

		var got []string
		cur, err := TailSpool(dir, Cursor{}, func(pos Cursor, payload []byte) bool {
			got = append(got, string(payload))
			return true
		})
		if err != nil {
			t.Fatalf("prefix %d/%d: tail failed: %v", n, len(seg), err)
		}
		if len(got) != complete {
			t.Fatalf("prefix %d: tailed %d records, want %d", n, len(got), complete)
		}
		for i := range got {
			if got[i] != payloads[i] {
				t.Fatalf("prefix %d: record %d = %q, want %q", n, i, got[i], payloads[i])
			}
		}

		// The writer reopens over the tear, repairs it, and appends; the
		// tailer resumes from its cursor without loss or duplication.
		w, err := OpenSpool(dir, 0)
		if err != nil {
			t.Fatalf("prefix %d: writer reopen failed: %v", n, err)
		}
		appendAll(t, w, `{"post":true}`)
		w.Close()
		var after []string
		if _, err := TailSpool(dir, cur, func(pos Cursor, payload []byte) bool {
			after = append(after, string(payload))
			return true
		}); err != nil {
			t.Fatalf("prefix %d: post-repair tail failed: %v", n, err)
		}
		if len(after) != 1 || after[0] != `{"post":true}` {
			t.Fatalf("prefix %d: post-repair tail = %v, want exactly the new record", n, after)
		}
	}
}

// A mid-file tear (not a tail) is corruption, not an in-flight append:
// the tailer must surface it instead of stalling or skipping silently.
func TestSpoolMidFileCorruptionSurfaces(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, sp, `{"q":1}`, `{"q":2}`)
	sp.Close()

	path := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[2] ^= 0xff // flip a checksum byte of record 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = TailSpool(dir, Cursor{}, func(pos Cursor, payload []byte) bool { return true })
	if err == nil {
		t.Fatal("corrupt record tailed without error")
	}
}

// The tailer's handle is read-only: it never repairs (truncates) a
// segment, and appending through it is refused — the writer's flock
// discipline stays the only repair path.
func TestSpoolTailerNeverRepairs(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpool(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, sp, `{"k":1}`)
	sp.Close()

	path := filepath.Join(dir, segName(1))
	torn := []byte(`deadbeef {"half`)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn)
	f.Close()
	before, _ := os.Stat(path)

	got, _ := tailAll(t, dir, Cursor{})
	if len(got) != 1 {
		t.Fatalf("tail = %v, want 1 intact record", got)
	}
	after, _ := os.Stat(path)
	if before.Size() != after.Size() {
		t.Fatalf("tailer changed the segment: %d -> %d bytes", before.Size(), after.Size())
	}

	r, err := safeio.OpenAppendLogReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Append([]byte("x")); err == nil {
		t.Fatal("read-only handle accepted an append")
	}
}
