package feedback

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"

	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/promote"
	"sage/internal/rl"
	"sage/internal/sentinel"
	"sage/internal/telemetry"
)

// Retrain metric names.
const (
	MetricRetrains     = "feedback.retrains"
	MetricRetrainSteps = "feedback.retrain_steps"
)

// MixPools blends live and offline experience into one training pool at
// roughly liveFrac live trajectories, sampling the offline complement
// without replacement under seed — deterministic, so a killed round that
// re-mixes from the same inputs rebuilds the identical pool. All live
// trajectories are always included (they are the point of the exercise);
// liveFrac only controls how much offline ballast anchors them. A nil or
// empty offline pool yields a live-only pool.
func MixPools(offline, live *collector.Pool, liveFrac float64, seed int64) *collector.Pool {
	if liveFrac <= 0 || liveFrac > 1 {
		liveFrac = 0.5
	}
	out := &collector.Pool{GR: live.GR}
	out.Trajs = append(out.Trajs, live.Trajs...)
	if offline == nil || len(offline.Trajs) == 0 {
		return out
	}
	if len(out.Trajs) == 0 {
		out.GR = offline.GR
	}
	want := int(float64(len(live.Trajs))*(1-liveFrac)/liveFrac + 0.5)
	if want > len(offline.Trajs) {
		want = len(offline.Trajs)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(offline.Trajs))
	for _, i := range perm[:want] {
		out.Trajs = append(out.Trajs, offline.Trajs[i])
	}
	return out
}

// RetrainConfig parameterizes one incremental retraining round.
type RetrainConfig struct {
	// WorkDir holds the round's artifacts: the materialized training pool
	// ("round-N.pool") and the sentinel checkpoint chain ("round-N.ckpt").
	// Both make the round resumable: the pool file freezes the mix the
	// moment the round starts (later ingestion cannot shift it), and the
	// checkpoint resumes training bitwise, so a killed round converges to
	// the identical parameters — and the identical registry fingerprint.
	WorkDir string
	Round   int

	Offline  *collector.Pool // offline ballast (nil = live-only)
	Live     *collector.Pool // live experience from the ingester
	LiveFrac float64         // target live fraction of the mix (default 0.5)

	Mask []int
	CRR  rl.CRRConfig // CRR.Steps = total gradient steps for the round

	// Incumbent, with WarmStart, seeds the learner's policy from the
	// serving model so the round is incremental rather than from-scratch.
	Incumbent *core.Model
	WarmStart bool

	// CheckpointEvery/CheckpointKeep tune the sentinel's rotation (0 =
	// sentinel defaults).
	CheckpointEvery int
	CheckpointKeep  int

	Metrics  *telemetry.Registry
	Events   *telemetry.JSONL
	Progress func(step int, criticLoss, policyLoss float64)
}

// roundPoolPath / roundCkptPath name a round's on-disk artifacts.
func roundPoolPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("round-%06d.pool", n))
}
func roundCkptPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("round-%06d.ckpt", n))
}

// CleanupRound removes a finished round's artifacts (pool, checkpoint
// chain). Best-effort: a leftover file only wastes disk.
func CleanupRound(dir string, n int) {
	os.Remove(roundPoolPath(dir, n))
	ckpt := roundCkptPath(dir, n)
	os.Remove(ckpt)
	for k := 1; k <= 8; k++ {
		if os.Remove(fmt.Sprintf("%s.%d", ckpt, k)) != nil {
			break
		}
	}
}

// RetrainRound runs (or resumes) one sentinel-guarded incremental CRR
// round and returns the trained candidate. The round pool is materialized
// to disk before training so a SIGKILL at any point resumes against the
// identical dataset; the sentinel's rotating checkpoints resume the
// optimizer bitwise.
func RetrainRound(ctx context.Context, cfg RetrainConfig) (*core.Model, error) {
	if err := os.MkdirAll(cfg.WorkDir, 0o755); err != nil {
		return nil, err
	}
	poolPath := roundPoolPath(cfg.WorkDir, cfg.Round)
	pool, err := collector.Load(poolPath)
	if errors.Is(err, fs.ErrNotExist) {
		pool = MixPools(cfg.Offline, cfg.Live, cfg.LiveFrac, cfg.CRR.Seed+int64(cfg.Round))
		if err := pool.Save(poolPath); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, fmt.Errorf("feedback: round pool: %w", err)
	}

	ds := rl.BuildDataset(pool, cfg.Mask)
	if ds.Transitions() == 0 {
		return nil, errors.New("feedback: round pool has no usable transitions")
	}

	ckptPath := roundCkptPath(cfg.WorkDir, cfg.Round)
	var learner *rl.CRR
	done := 0
	resumed, steps, _, err := rl.LoadCheckpointAuto(ckptPath, ds)
	switch {
	case err == nil:
		learner, done = resumed, steps
	case rl.IsNotExist(err):
		learner = rl.NewCRR(ds, cfg.CRR)
		if cfg.WarmStart && cfg.Incumbent != nil {
			if err := learner.SeedFromPolicy(cfg.Incumbent.Policy); err != nil {
				return nil, err
			}
		}
	default:
		// Checkpoints exist but none loads: a fresh start here would
		// silently retrain different parameters under the same round
		// number, breaking publish idempotence. Refuse.
		return nil, err
	}
	remaining := cfg.CRR.Steps - done
	if remaining < 0 {
		remaining = 0
	}
	learner.Cfg.Steps = remaining

	sn := sentinel.New(sentinel.Config{
		CheckpointPath:  ckptPath,
		CheckpointEvery: cfg.CheckpointEvery,
		CheckpointKeep:  cfg.CheckpointKeep,
		Metrics:         cfg.Metrics,
	})
	trained, serr := sn.Run(ctx, learner, ds, cfg.Progress)
	if cfg.Events != nil {
		sn.EmitEvents(cfg.Events)
	}
	if serr != nil {
		return nil, fmt.Errorf("feedback: sentinel aborted round %d: %w", cfg.Round, serr)
	}
	if err := ctx.Err(); err != nil {
		// Interrupted mid-round: the checkpoint chain holds the progress;
		// do not publish a half-trained candidate.
		if remaining > 0 {
			trained.SaveCheckpointRotate(ckptPath, trained.StepsDone(), cfg.CheckpointKeep)
		}
		return nil, err
	}
	cfg.Metrics.Counter(MetricRetrains).Inc()
	cfg.Metrics.Counter(MetricRetrainSteps).Add(int64(remaining))
	return &core.Model{Policy: trained.Policy, Mask: cfg.Mask, GR: pool.GR}, nil
}

// ReplayShadow replays the ingester's retained live windows through a
// candidate's shadow evaluator, reproducing offline exactly what the
// serving plane's live mirroring would have measured: per-regime action
// divergence between the candidate and the decisions the incumbent
// actually served. Each window replays under a synthetic session id so
// id reuse across serving restarts cannot splice two flows' recurrent
// state together.
func (in *Ingester) ReplayShadow(sh *promote.Shadow) {
	var entries []liveEntry
	for _, q := range in.pool {
		entries = append(entries, q...)
	}
	sortEntries(entries)
	for i, e := range entries {
		sid := uint64(i + 1)
		sh.TagSession(sid, e.Regime)
		fb := make(map[int]bool, len(e.Fallback))
		for _, ix := range e.Fallback {
			fb[ix] = true
		}
		for j, st := range e.Steps {
			sh.Observe(sid, st.State, st.Action, fb[j])
		}
	}
}
