package feedback

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/promote"
	"sage/internal/rl"
	"sage/internal/safeio"
	"sage/internal/telemetry"
)

// Loop metric names.
const (
	MetricRounds    = "feedback.rounds"
	MetricPublished = "feedback.published"
	MetricPromoted  = "feedback.promoted"
	MetricRejected  = "feedback.rejected"
)

// Stage boundaries, in order. The Kill hook fires just after each
// boundary's durable record lands, which is exactly where a SIGKILL is
// most interesting: the stage is committed but nothing after it ran.
const (
	StagePoll      = "poll"      // ingestion journaled up to the spool tail
	StageRound     = "round"     // round pool frozen + round journaled
	StageTrained   = "trained"   // retraining finished (checkpoint chain final)
	StagePublished = "published" // candidate in the registry + journaled
	StageVerdict   = "verdict"   // gate decision applied + journaled
)

const loopJournalName = "loop.journal"

// LoopConfig wires the full closed loop.
type LoopConfig struct {
	SpoolDir    string // serving plane's trace spool (tailed read-only)
	StateDir    string // ingest + loop journals, round artifacts
	RegistryDir string // the promote registry serve watches

	// Offline is the offline experience pool mixed into every round (nil =
	// train on live experience alone).
	Offline  *collector.Pool
	LiveFrac float64 // live fraction of the round mix (default 0.5)

	Mask    []int
	GR      gr.Config
	Quality collector.QualityConfig

	QuotaPerRegime  int
	MaxFallbackFrac float64

	// MinAdmitted is how many newly admitted windows (since the last round
	// started) trigger a retraining round (default 8); MinRegimes
	// additionally requires that many distinct regimes retained in the
	// pool (default 1).
	MinAdmitted int
	MinRegimes  int

	CRR             rl.CRRConfig // CRR.Steps = gradient steps per round
	WarmStart       bool         // seed each round from the incumbent's weights
	CheckpointEvery int
	CheckpointKeep  int

	Gate promote.GateConfig // Shadow is filled per round from live replay

	Metrics *telemetry.Registry
	Events  *telemetry.JSONL

	// Kill, when non-nil, is called at every stage boundary with the stage
	// just committed — the crash-injection seam the kill tests use to die
	// (os.Exit) at exact boundaries. Production leaves it nil.
	Kill func(stage string)
}

func (c LoopConfig) fill() LoopConfig {
	if c.MinAdmitted <= 0 {
		c.MinAdmitted = 8
	}
	if c.MinRegimes <= 0 {
		c.MinRegimes = 1
	}
	if c.LiveFrac <= 0 {
		c.LiveFrac = 0.5
	}
	return c
}

// loopRecord is one line of the loop journal.
type loopRecord struct {
	T        string `json:"t"` // "round" | "published" | "verdict"
	N        int    `json:"n"`
	Admitted int    `json:"admitted,omitempty"` // at round start ("round")
	ID       string `json:"id,omitempty"`
	Promote  bool   `json:"promote,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// Loop drives serve → spool → ingest → retrain → publish → gate. All
// progress is journaled; a Loop reopened after SIGKILL resumes the open
// round at the first uncommitted stage, and every stage is idempotent
// under replay (deterministic retraining ⇒ identical fingerprint ⇒ the
// registry's duplicate-publish and not-a-candidate errors read as
// "already done").
type Loop struct {
	cfg     LoopConfig
	in      *Ingester
	reg     *promote.Registry
	journal *safeio.AppendLog

	round     int    // latest round started (0 = none)
	roundOpen bool   // latest round lacks a verdict
	published string // candidate id if the open round has published
	mark      int    // Counts().Admitted when the latest round started
}

// OpenLoop opens every journal and positions the loop at its resume point.
func OpenLoop(cfg LoopConfig) (*Loop, error) {
	cfg = cfg.fill()
	reg, err := promote.OpenRegistry(cfg.RegistryDir)
	if err != nil {
		return nil, err
	}
	in, err := OpenIngester(IngestConfig{
		SpoolDir:        cfg.SpoolDir,
		StateDir:        cfg.StateDir,
		GR:              cfg.GR,
		Quality:         cfg.Quality,
		QuotaPerRegime:  cfg.QuotaPerRegime,
		MaxFallbackFrac: cfg.MaxFallbackFrac,
		Metrics:         cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	lp := &Loop{cfg: cfg, in: in, reg: reg}
	jr, _, err := safeio.OpenAppendLog(filepath.Join(cfg.StateDir, loopJournalName), func(payload []byte) {
		var r loopRecord
		if json.Unmarshal(payload, &r) != nil {
			return
		}
		switch r.T {
		case "round":
			lp.round, lp.roundOpen, lp.published, lp.mark = r.N, true, "", r.Admitted
		case "published":
			if r.N == lp.round {
				lp.published = r.ID
			}
		case "verdict":
			if r.N == lp.round {
				lp.roundOpen = false
			}
		}
	})
	if err != nil {
		in.Close()
		return nil, err
	}
	lp.journal = jr
	if !lp.roundOpen && lp.round > 0 {
		CleanupRound(lp.cfg.StateDir, lp.round) // crash between verdict and cleanup
	}
	return lp, nil
}

// Close releases the loop's journals (the registry holds no open files).
func (l *Loop) Close() error {
	err := l.journal.Close()
	if e := l.in.Close(); err == nil {
		err = e
	}
	return err
}

// Ingester exposes the loop's ingester (accounting, pool inspection).
func (l *Loop) Ingester() *Ingester { return l.in }

// Round reports the latest round number and whether it is still open.
func (l *Loop) Round() (int, bool) { return l.round, l.roundOpen }

func (l *Loop) kill(stage string) {
	if l.cfg.Kill != nil {
		l.cfg.Kill(stage)
	}
}

func (l *Loop) journalRec(r loopRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return l.journal.Append(b)
}

// Step runs one iteration: ingest whatever the spool grew, then start or
// resume a retraining round if warranted. Returns whether a round reached
// its verdict this step.
func (l *Loop) Step(ctx context.Context) (verdict bool, err error) {
	if _, err := l.in.Poll(); err != nil {
		return false, err
	}
	l.kill(StagePoll)

	if !l.roundOpen {
		c := l.in.Counts()
		regimes := 0
		for _, n := range l.in.PoolByRegime() {
			if n > 0 {
				regimes++
			}
		}
		if c.Admitted-l.mark < l.cfg.MinAdmitted || regimes < l.cfg.MinRegimes {
			return false, nil
		}
		if err := l.startRound(c.Admitted); err != nil {
			return false, err
		}
	}
	return true, l.runRound(ctx)
}

// startRound freezes the training mix on disk, then journals the round —
// in that order, so a resumed round always finds its pool.
func (l *Loop) startRound(admitted int) error {
	n := l.round + 1
	pool := MixPools(l.cfg.Offline, l.in.LivePool(), l.cfg.LiveFrac, l.cfg.CRR.Seed+int64(n))
	if err := pool.Save(roundPoolPath(l.cfg.StateDir, n)); err != nil {
		return err
	}
	if err := l.journalRec(loopRecord{T: "round", N: n, Admitted: admitted}); err != nil {
		return err
	}
	l.round, l.roundOpen, l.published, l.mark = n, true, "", admitted
	l.cfg.Metrics.Counter(MetricRounds).Inc()
	l.cfg.Events.Emit(map[string]any{"event": "feedback_round", "round": n, "admitted": admitted})
	l.kill(StageRound)
	return nil
}

// runRound drives the open round to its verdict: retrain (resumable via
// the round checkpoint), publish (idempotent via the deterministic
// fingerprint id), gate + registry transition (idempotent via the state
// machine), journal, cleanup.
func (l *Loop) runRound(ctx context.Context) error {
	var cand *core.Model
	id := l.published
	if id == "" {
		incumbent, _, incErr := l.reg.LoadIncumbent()
		if incErr != nil && !errors.Is(incErr, promote.ErrNoIncumbent) {
			return incErr
		}
		model, err := RetrainRound(ctx, RetrainConfig{
			WorkDir:         l.cfg.StateDir,
			Round:           l.round,
			Offline:         nil, // the round pool file already holds the mix
			Live:            l.in.LivePool(),
			LiveFrac:        l.cfg.LiveFrac,
			Mask:            l.cfg.Mask,
			CRR:             l.cfg.CRR,
			Incumbent:       incumbent,
			WarmStart:       l.cfg.WarmStart,
			CheckpointEvery: l.cfg.CheckpointEvery,
			CheckpointKeep:  l.cfg.CheckpointKeep,
			Metrics:         l.cfg.Metrics,
			Events:          l.cfg.Events,
		})
		if err != nil {
			return err
		}
		l.kill(StageTrained)
		cand = model

		fp := promote.Fingerprint(model)
		id = fmt.Sprintf("sage-loop-%s", fp[:10])
		_, err = l.reg.Publish(model, promote.Meta{ID: id, Provenance: "sage-loop", TrainStep: l.cfg.CRR.Steps})
		if err != nil && !strings.Contains(err.Error(), "already published") {
			return err
		}
		if err := l.journalRec(loopRecord{T: "published", N: l.round, ID: id}); err != nil {
			return err
		}
		l.published = id
		l.cfg.Metrics.Counter(MetricPublished).Inc()
		l.cfg.Events.Emit(map[string]any{"event": "feedback_published", "round": l.round, "id": id})
		l.kill(StagePublished)
	}
	if cand == nil {
		m, err := l.reg.Load(id)
		if err != nil {
			return err
		}
		cand = m
	}
	return l.decide(cand, id)
}

// decide runs the shadow replay + dominance gate and applies the verdict.
func (l *Loop) decide(cand *core.Model, id string) error {
	inc, _, err := l.reg.LoadIncumbent()
	if errors.Is(err, promote.ErrNoIncumbent) {
		// Empty registry: there is nothing to dominate, and serving needs
		// *some* incumbent. First candidate wins by default.
		return l.finishVerdict(id, true, "first candidate: no incumbent to compare against")
	}
	if err != nil {
		return err
	}
	sh := promote.NewShadow(cand, promote.ShadowConfig{Metrics: l.cfg.Metrics})
	l.in.ReplayShadow(sh)
	stats := sh.Stats()
	g := l.cfg.Gate
	g.Shadow = &stats
	g.Events = l.cfg.Events
	v := promote.RunGate(inc, cand, g)
	return l.finishVerdict(id, v.Promote, v.Reason)
}

// finishVerdict applies the gate decision to the registry (idempotently:
// a candidate already transitioned by a pre-crash run reads as done),
// journals the verdict, and retires the round's artifacts.
func (l *Loop) finishVerdict(id string, promoted bool, reason string) error {
	var err error
	if promoted {
		err = l.reg.Promote(id, reason)
	} else {
		err = l.reg.Reject(id, reason)
	}
	if err != nil && !strings.Contains(err.Error(), "not a candidate") {
		return err
	}
	if err := l.journalRec(loopRecord{T: "verdict", N: l.round, ID: id, Promote: promoted, Reason: reason}); err != nil {
		return err
	}
	l.roundOpen = false
	if promoted {
		l.cfg.Metrics.Counter(MetricPromoted).Inc()
	} else {
		l.cfg.Metrics.Counter(MetricRejected).Inc()
	}
	l.cfg.Events.Emit(map[string]any{"event": "feedback_verdict", "round": l.round, "id": id, "promote": promoted, "reason": reason})
	l.kill(StageVerdict)
	CleanupRound(l.cfg.StateDir, l.round)
	return nil
}

// Run steps the loop every interval until ctx is done. Poll errors are
// returned (they mean the spool or a journal is corrupt — the daemon
// should die loudly, not spin).
func (l *Loop) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if _, err := l.Step(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
