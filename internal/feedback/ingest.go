package feedback

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/safeio"
	"sage/internal/telemetry"
)

// openLog opens (creating if needed) one of the ingester's append logs.
func openLog(path string, replay func(payload []byte)) (*safeio.AppendLog, error) {
	log, _, err := safeio.OpenAppendLog(path, replay)
	return log, err
}

// Ingest metric names. Per-regime admitted counts are exported as
// "feedback.admitted.<regime>".
const (
	MetricIngested    = "feedback.ingested"
	MetricAdmitted    = "feedback.admitted"
	MetricQuarantined = "feedback.quarantined"
	MetricSkipped     = "feedback.skipped"
	MetricPoolEvicted = "feedback.pool_evicted"
	MetricPoolSize    = "feedback.pool_size"
)

// Dispositions. Every spool record gets exactly one, journaled with the
// cursor just past the record, so spool accounting always balances:
// ingested == admitted + quarantined + skipped.
const (
	DispAdmitted    = "admitted"    // passed the gate, entered the live pool
	DispQuarantined = "quarantined" // failed the collector quality gate
	DispSkipped     = "skipped"     // not policy experience (fallback-dominated)
)

// File names inside the ingester's state directory.
const (
	ingestJournalName = "ingest.journal"
	livePoolLogName   = "live.pool.log"
)

// IngestConfig tunes an Ingester.
type IngestConfig struct {
	SpoolDir string // the serving plane's spool (read-only tail)
	StateDir string // ingest journal + live pool log live here
	// GR provides the reward constants (ξ, κ) for proxy labeling.
	GR gr.Config
	// Quality is the PR 4 gate live windows must pass; zero value = the
	// collector defaults.
	Quality collector.QualityConfig
	// QuotaPerRegime caps admitted windows retained per regime (default
	// 64): admission is freshness-weighted — a full regime admits the new
	// window and evicts its oldest — so one hot regime can neither crowd
	// out the others nor pin the pool to stale experience.
	QuotaPerRegime int
	// MaxFallbackFrac skips windows whose fallback share exceeds it
	// (default 0.5): a window served mostly by the safety path is
	// evidence about outages, not about the policy's actions.
	MaxFallbackFrac float64
	Metrics         *telemetry.Registry
}

func (c IngestConfig) fill() IngestConfig {
	if c.QuotaPerRegime <= 0 {
		c.QuotaPerRegime = 64
	}
	if c.MaxFallbackFrac <= 0 {
		c.MaxFallbackFrac = 0.5
	}
	return c
}

// liveEntry is one admitted window in the live pool (and one record of
// the live pool log). Key is the spool cursor just past the source
// record: globally monotonic, so it doubles as admission order and as the
// exactly-once join key between the pool log and the ingest journal.
type liveEntry struct {
	Key    Cursor    `json:"key"`
	Regime string    `json:"regime"`
	SID    uint64    `json:"sid"`
	Reason string    `json:"reason"`
	Steps  []gr.Step `json:"steps"`
	// Fallback lists step indices served by the safety no-op path; shadow
	// replay needs them because divergence is only meaningful on steps the
	// policy actually decided.
	Fallback []int `json:"fb,omitempty"`
}

// sortEntries orders entries by spool cursor (admission order).
func sortEntries(entries []liveEntry) {
	sort.Slice(entries, func(i, j int) bool { return cursorLess(entries[i].Key, entries[j].Key) })
}

// journalRecord is one disposition in the ingest journal.
type journalRecord struct {
	Key    Cursor `json:"key"`
	Disp   string `json:"disp"`
	Regime string `json:"regime"`
	SID    uint64 `json:"sid"`
	Why    string `json:"why,omitempty"`
}

// Counts is the ingester's journal-derived accounting.
type Counts struct {
	Ingested    int
	Admitted    int
	Quarantined int
	Skipped     int
	Evicted     int            // admitted entries later displaced by quota
	ByRegime    map[string]int // admitted per regime (pre-eviction)
}

// Ingester tails the spool, labels and gates each window, and maintains
// the regime-balanced live experience pool. All state needed to resume
// after SIGKILL lives in two append-only logs:
//
//	ingest.journal — one disposition per spool record, with the spool
//	                 cursor after it; the last record is the resume point.
//	live.pool.log  — full steps of every admitted window.
//
// The write order is pool-log-then-journal: a crash between the two
// leaves an orphan pool entry whose key is ahead of the journal cursor,
// which the reopened ingester detects and adopts instead of re-appending —
// so no window is ever admitted twice, and none is lost.
type Ingester struct {
	cfg     IngestConfig
	journal *safeio.AppendLog
	liveLog *safeio.AppendLog
	cursor  Cursor
	counts  Counts

	pool       map[string][]liveEntry // regime → admitted, oldest first
	pending    map[Cursor]bool        // pool-log entries not yet journaled
	logRecords int                    // live pool log length, for compaction
}

// OpenIngester replays the state directory's logs and returns an ingester
// positioned at the journaled spool cursor.
func OpenIngester(cfg IngestConfig) (*Ingester, error) {
	cfg = cfg.fill()
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	in := &Ingester{
		cfg:     cfg,
		pool:    make(map[string][]liveEntry),
		pending: make(map[Cursor]bool),
		counts:  Counts{ByRegime: make(map[string]int)},
	}

	admitted := make(map[Cursor]bool)
	jr, err := openLog(filepath.Join(cfg.StateDir, ingestJournalName), func(payload []byte) {
		var r journalRecord
		if json.Unmarshal(payload, &r) != nil {
			return
		}
		in.cursor = r.Key
		in.counts.Ingested++
		switch r.Disp {
		case DispAdmitted:
			in.counts.Admitted++
			in.counts.ByRegime[r.Regime]++
			admitted[r.Key] = true
		case DispQuarantined:
			in.counts.Quarantined++
		case DispSkipped:
			in.counts.Skipped++
		}
	})
	if err != nil {
		return nil, err
	}
	in.journal = jr

	var entries []liveEntry
	ll, err := openLog(filepath.Join(cfg.StateDir, livePoolLogName), func(payload []byte) {
		var e liveEntry
		if json.Unmarshal(payload, &e) != nil {
			return
		}
		entries = append(entries, e)
	})
	if err != nil {
		jr.Close()
		return nil, err
	}
	in.liveLog = ll
	in.logRecords = len(entries)

	// Rebuild the pool by re-admitting journaled entries in key order; the
	// quota rule re-evicts deterministically, so the pool matches what was
	// in memory at the crash. Entries ahead of the journal cursor are the
	// pool-log-then-journal crash window: adopt them as pending so the
	// record's reprocessing journals it without a duplicate append.
	sortEntries(entries)
	for _, e := range entries {
		if admitted[e.Key] {
			in.admitToPool(e, false)
		} else if !cursorLess(e.Key, in.cursor) { // e.Key > cursor: orphan
			in.pending[e.Key] = true
		}
		// An entry neither journaled nor ahead of the cursor would mean a
		// journal that skipped a key — impossible with ordered appends —
		// so it is simply stale (pre-compaction duplicate) and ignored.
	}
	in.counts.Evicted = in.counts.Admitted - in.poolSize()
	in.cfg.Metrics.Gauge(MetricPoolSize).Set(float64(in.poolSize()))
	return in, nil
}

func cursorLess(a, b Cursor) bool {
	if a.Seg != b.Seg {
		return a.Seg < b.Seg
	}
	return a.Off < b.Off
}

// admitToPool inserts e and applies the regime quota, evicting the oldest
// entry of the same regime when over. count=true updates eviction
// telemetry (false during replay, which recounts from the journal).
func (in *Ingester) admitToPool(e liveEntry, count bool) {
	q := in.pool[e.Regime]
	q = append(q, e)
	if len(q) > in.cfg.QuotaPerRegime {
		q = q[1:]
		if count {
			in.counts.Evicted++
			in.cfg.Metrics.Counter(MetricPoolEvicted).Inc()
		}
	}
	in.pool[e.Regime] = q
}

func (in *Ingester) poolSize() int {
	n := 0
	for _, q := range in.pool {
		n += len(q)
	}
	return n
}

// Cursor returns the journaled resume position in the spool.
func (in *Ingester) Cursor() Cursor { return in.cursor }

// Counts returns a copy of the journal-derived accounting.
func (in *Ingester) Counts() Counts {
	c := in.counts
	c.ByRegime = make(map[string]int, len(in.counts.ByRegime))
	for k, v := range in.counts.ByRegime {
		c.ByRegime[k] = v
	}
	return c
}

// Poll tails the spool from the journaled cursor and processes every new
// complete record: label, classify, gate, admit or quarantine or skip,
// journal. Returns how many records were processed. Safe to call while
// the serving plane is appending.
func (in *Ingester) Poll() (int, error) {
	n := 0
	var perr error
	cur, err := TailSpool(in.cfg.SpoolDir, in.cursor, func(pos Cursor, payload []byte) bool {
		if perr = in.ingestOne(pos, payload); perr != nil {
			return false
		}
		n++
		return true
	})
	if perr != nil {
		return n, perr
	}
	if err != nil {
		return n, err
	}
	// cur only ever moves past records we journaled (fn accepts exactly
	// the records ingestOne committed); an empty poll may still
	// fast-forward it across fully-drained segments, which is fine — the
	// journaled cursor stays authoritative for resume.
	_ = cur
	if n > 0 {
		in.maybeCompact()
	}
	return n, nil
}

// ingestOne gives the spool record ending at pos its single disposition.
func (in *Ingester) ingestOne(pos Cursor, payload []byte) error {
	var rec WindowRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		// An unparseable payload with a valid checksum is a version skew
		// problem, not corruption; quarantine it so the pipeline keeps
		// accounting for every record.
		return in.journalDisp(journalRecord{Key: pos, Disp: DispQuarantined, Why: "unparseable: " + err.Error()})
	}
	if len(rec.Actions) != len(rec.States) {
		return in.journalDisp(journalRecord{Key: pos, Disp: DispQuarantined, SID: rec.SID, Why: "state/action length mismatch"})
	}
	regime := ClassifyRegime(rec.States)
	if frac := fallbackFrac(rec); frac > in.cfg.MaxFallbackFrac {
		return in.journalDisp(journalRecord{
			Key: pos, Disp: DispSkipped, Regime: regime, SID: rec.SID,
			Why: fmt.Sprintf("fallback fraction %.2f", frac),
		})
	}
	steps := LabelWindow(rec, in.cfg.GR)
	tr := collector.Trajectory{
		Scheme: "live", Env: "live-" + regime, Steps: steps, Score: meanReward(steps),
	}
	if issues := collector.CheckTrajectory(tr, in.cfg.Quality); len(issues) > 0 {
		return in.journalDisp(journalRecord{
			Key: pos, Disp: DispQuarantined, Regime: regime, SID: rec.SID, Why: issues[0].Reason,
		})
	}
	e := liveEntry{Key: pos, Regime: regime, SID: rec.SID, Reason: rec.Reason, Steps: steps, Fallback: rec.Fallback}
	if !in.pending[pos] {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if err := in.liveLog.Append(b); err != nil {
			return err
		}
		in.logRecords++
	}
	delete(in.pending, pos)
	if err := in.journalDisp(journalRecord{Key: pos, Disp: DispAdmitted, Regime: regime, SID: rec.SID}); err != nil {
		return err
	}
	in.admitToPool(e, true)
	in.cfg.Metrics.Counter(MetricAdmitted + "." + regime).Inc()
	in.cfg.Metrics.Gauge(MetricPoolSize).Set(float64(in.poolSize()))
	return nil
}

// journalDisp durably records one disposition and advances the cursor.
func (in *Ingester) journalDisp(r journalRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := in.journal.Append(b); err != nil {
		return err
	}
	in.cursor = r.Key
	in.counts.Ingested++
	in.cfg.Metrics.Counter(MetricIngested).Inc()
	switch r.Disp {
	case DispAdmitted:
		in.counts.Admitted++
		in.counts.ByRegime[r.Regime]++
		in.cfg.Metrics.Counter(MetricAdmitted).Inc()
	case DispQuarantined:
		in.counts.Quarantined++
		in.cfg.Metrics.Counter(MetricQuarantined).Inc()
	case DispSkipped:
		in.counts.Skipped++
		in.cfg.Metrics.Counter(MetricSkipped).Inc()
	}
	return nil
}

// maybeCompact rewrites the live pool log down to the retained entries
// when evictions have bloated it past 4x the pool. The rewrite goes to a
// temp log that atomically renames over the old one, so a crash at any
// point leaves either the old or the new log intact.
func (in *Ingester) maybeCompact() {
	retained := in.poolSize()
	if in.logRecords <= 4*retained || in.logRecords < 64 {
		return
	}
	var entries []liveEntry
	for _, q := range in.pool {
		entries = append(entries, q...)
	}
	sortEntries(entries)
	path := filepath.Join(in.cfg.StateDir, livePoolLogName)
	tmp := path + ".compact"
	os.Remove(tmp)
	nl, err := openLog(tmp, nil)
	if err != nil {
		return // compaction is an optimization; never fail ingestion over it
	}
	for _, e := range entries {
		b, err := json.Marshal(e)
		if err != nil {
			continue
		}
		if err := nl.Append(b); err != nil {
			nl.Close()
			os.Remove(tmp)
			return
		}
	}
	nl.Close()
	in.liveLog.Close()
	if err := os.Rename(tmp, path); err != nil {
		// Fall through to reopening whatever is at path.
	}
	reopened, err := openLog(path, nil)
	if err != nil {
		return
	}
	in.liveLog = reopened
	in.logRecords = len(entries)
}

// LivePool materializes the retained live experience as a collector pool
// (freshest entries, regime-balanced by construction).
func (in *Ingester) LivePool() *collector.Pool {
	p := &collector.Pool{GR: in.cfg.GR.Fill()}
	var entries []liveEntry
	for _, q := range in.pool {
		entries = append(entries, q...)
	}
	sortEntries(entries)
	for _, e := range entries {
		p.Trajs = append(p.Trajs, collector.Trajectory{
			Scheme: "live",
			Env:    "live-" + e.Regime,
			Steps:  e.Steps,
			Score:  meanReward(e.Steps),
		})
	}
	return p
}

// PoolByRegime reports the retained admitted window count per regime.
func (in *Ingester) PoolByRegime() map[string]int {
	out := make(map[string]int, len(in.pool))
	for r, q := range in.pool {
		out[r] = len(q)
	}
	return out
}

// Close closes both logs.
func (in *Ingester) Close() error {
	err1 := in.journal.Close()
	err2 := in.liveLog.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func fallbackFrac(rec WindowRecord) float64 {
	if len(rec.States) == 0 {
		return 0
	}
	return float64(len(rec.Fallback)) / float64(len(rec.States))
}

func meanReward(steps []gr.Step) float64 {
	if len(steps) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range steps {
		sum += s.Reward
	}
	return sum / float64(len(steps))
}
