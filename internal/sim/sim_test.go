package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if got := FromMillis(2.5); got != 2500 {
		t.Fatalf("FromMillis(2.5) = %v", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (250 * Millisecond).Millis(); got != 250 {
		t.Fatalf("Millis = %v", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500000s" {
		t.Fatalf("String = %q", s)
	}
}

func TestLoopOrdering(t *testing.T) {
	l := NewLoop()
	var order []int
	l.At(30, func(Time) { order = append(order, 3) })
	l.At(10, func(Time) { order = append(order, 1) })
	l.At(20, func(Time) { order = append(order, 2) })
	l.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if l.Now() != 30 {
		t.Fatalf("Now = %v", l.Now())
	}
	if l.Processed() != 3 {
		t.Fatalf("Processed = %d", l.Processed())
	}
}

func TestLoopSameInstantFIFO(t *testing.T) {
	l := NewLoop()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5, func(Time) { order = append(order, i) })
	}
	l.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of schedule order: %v", order)
		}
	}
}

func TestLoopCancel(t *testing.T) {
	l := NewLoop()
	fired := false
	h := l.At(10, func(Time) { fired = true })
	if !h.Pending() {
		t.Fatal("expected pending")
	}
	h.Cancel()
	if h.Pending() {
		t.Fatal("expected not pending after cancel")
	}
	l.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	h.Cancel() // double-cancel is a no-op
}

func TestLoopRunUntil(t *testing.T) {
	l := NewLoop()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		l.At(at, func(now Time) { fired = append(fired, now) })
	}
	l.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if l.Now() != 20 {
		t.Fatalf("Now = %v, want clock advanced to deadline", l.Now())
	}
	l.RunUntil(30)
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestLoopAfterAndNestedScheduling(t *testing.T) {
	l := NewLoop()
	var ticks []Time
	var tick Event
	tick = func(now Time) {
		ticks = append(ticks, now)
		if now < 50*Millisecond {
			l.After(10*Millisecond, tick)
		}
	}
	l.After(10*Millisecond, tick)
	l.Run()
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v", ticks)
	}
	if ticks[4] != 50*Millisecond {
		t.Fatalf("last tick = %v", ticks[4])
	}
}

func TestLoopPastSchedulingPanics(t *testing.T) {
	l := NewLoop()
	l.At(10, func(Time) {})
	l.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	l.At(5, func(Time) {})
}

func TestPendingEvents(t *testing.T) {
	l := NewLoop()
	h1 := l.At(1, func(Time) {})
	l.At(2, func(Time) {})
	if got := l.PendingEvents(); got != 2 {
		t.Fatalf("PendingEvents = %d", got)
	}
	h1.Cancel()
	if got := l.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents after cancel = %d", got)
	}
}

// Property: for any set of event times, execution is sorted by time.
func TestLoopSortedExecutionProperty(t *testing.T) {
	f := func(times []uint16) bool {
		l := NewLoop()
		var fired []Time
		for _, u := range times {
			at := Time(u)
			l.At(at, func(now Time) { fired = append(fired, now) })
		}
		l.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1] > fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
