// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer microseconds (Time). Events scheduled for the
// same instant fire in the order they were scheduled, which together with
// seeded random sources makes every simulation in this repository
// reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in microseconds since the start of the run.
type Time int64

// Common durations, in simulated microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * 1000
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to a Time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Event is a callback scheduled to run at a simulated instant.
type Event func(now Time)

type scheduled struct {
	at    Time
	seq   uint64 // tie-breaker: schedule order
	fn    Event
	index int
	dead  bool
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*scheduled)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *scheduled }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// Pending reports whether the event is still waiting to fire.
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.dead && h.ev.index >= 0 }

// Loop is a single-threaded discrete-event loop.
// The zero value is not usable; use NewLoop.
type Loop struct {
	now    Time
	events eventHeap
	seq    uint64
	ran    uint64
}

// NewLoop returns an empty event loop positioned at time zero.
func NewLoop() *Loop {
	l := &Loop{}
	heap.Init(&l.events)
	return l
}

// Now returns the current simulated time.
func (l *Loop) Now() Time { return l.now }

// Processed returns the number of events executed so far.
func (l *Loop) Processed() uint64 { return l.ran }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it indicates a logic error in the caller.
func (l *Loop) At(at Time, fn Event) Handle {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
	}
	e := &scheduled{at: at, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, e)
	return Handle{ev: e}
}

// After schedules fn to run d after the current time.
func (l *Loop) After(d Time, fn Event) Handle {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// Step executes the next pending event, if any, and reports whether one ran.
func (l *Loop) Step() bool {
	for l.events.Len() > 0 {
		e := heap.Pop(&l.events).(*scheduled)
		e.index = -1
		if e.dead {
			continue
		}
		l.now = e.at
		l.ran++
		e.fn(l.now)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than deadline. The loop's clock is left at the time of the
// last executed event, or advanced to deadline if that is later.
func (l *Loop) RunUntil(deadline Time) {
	for l.events.Len() > 0 {
		next := l.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// Run executes events until none remain.
func (l *Loop) Run() {
	for l.Step() {
	}
}

func (l *Loop) peek() *scheduled {
	for l.events.Len() > 0 {
		e := l.events[0]
		if e.dead {
			heap.Pop(&l.events)
			e.index = -1
			continue
		}
		return e
	}
	return nil
}

// PendingEvents returns the number of live events in the queue.
func (l *Loop) PendingEvents() int {
	n := 0
	for _, e := range l.events {
		if !e.dead {
			n++
		}
	}
	return n
}
