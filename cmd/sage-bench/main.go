// Command sage-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	sage-bench -exp fig09,fig10          # specific experiments
//	sage-bench -exp all -sizing quick    # the whole suite, bench-sized
//	sage-bench -list                     # available experiments
//
// Expensive artifacts (the pool, the trained models) are built once per
// process and shared across the requested experiments.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sage/internal/exp"
	"sage/internal/telemetry"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		sizing    = flag.String("sizing", "quick", "experiment scale: quick|paper")
		parallel  = flag.Int("parallel", 0, "rollout workers (0 = NumCPU)")
		seed      = flag.Int64("seed", 1, "global seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		metrics   = flag.String("metrics", "", "write per-experiment wall-time records as JSONL to this file")
		pprofAddr = flag.String("pprof", "", "serve pprof+expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	var emit *telemetry.JSONL
	if *metrics != "" {
		var err error
		emit, err = telemetry.CreateJSONL(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer emit.Close()
	}

	if *list {
		for _, e := range exp.Suite() {
			fmt.Printf("%-10s %s\n", e.ID, e.About)
		}
		return
	}

	var s exp.Sizing
	switch *sizing {
	case "quick":
		s = exp.Quick()
	case "paper":
		s = exp.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown sizing %q (want quick|paper)\n", *sizing)
		os.Exit(2)
	}
	s.Parallel = *parallel
	s.Seed = *seed
	a := exp.NewArtifacts(s)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var ids []string
	if *expFlag == "all" {
		for _, e := range exp.Suite() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}
	// Resolve every id before running anything: a typo in the third
	// experiment should fail now, not after the first two finished.
	var exps []exp.Experiment
	for _, id := range ids {
		e, err := exp.Find(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = append(exps, e)
	}
	for _, e := range exps {
		if ctx.Err() != nil {
			if emit != nil {
				emit.Flush()
			}
			fmt.Fprintln(os.Stderr, "interrupted; remaining experiments skipped")
			os.Exit(130)
		}
		start := time.Now()
		fmt.Printf("\n### %s — %s\n", e.ID, e.About)
		exp.RunAndPrint(e, a, os.Stdout)
		elapsed := time.Since(start)
		fmt.Printf("[%s done in %s]\n", e.ID, elapsed.Round(time.Millisecond))
		emit.Emit(struct {
			Exp      string  `json:"exp"`
			About    string  `json:"about"`
			Seconds  float64 `json:"seconds"`
			Sizing   string  `json:"sizing"`
			Parallel int     `json:"parallel"`
		}{e.ID, e.About, elapsed.Seconds(), *sizing, *parallel})
	}
}
