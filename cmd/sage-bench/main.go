// Command sage-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	sage-bench -exp fig09,fig10          # specific experiments
//	sage-bench -exp all -sizing quick    # the whole suite, bench-sized
//	sage-bench -list                     # available experiments
//
// Expensive artifacts (the pool, the trained models) are built once per
// process and shared across the requested experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sage/internal/exp"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		sizing   = flag.String("sizing", "quick", "experiment scale: quick|paper")
		parallel = flag.Int("parallel", 0, "rollout workers (0 = NumCPU)")
		seed     = flag.Int64("seed", 1, "global seed")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Suite() {
			fmt.Printf("%-10s %s\n", e.ID, e.About)
		}
		return
	}

	var s exp.Sizing
	switch *sizing {
	case "quick":
		s = exp.Quick()
	case "paper":
		s = exp.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown sizing %q (want quick|paper)\n", *sizing)
		os.Exit(2)
	}
	s.Parallel = *parallel
	s.Seed = *seed
	a := exp.NewArtifacts(s)

	var ids []string
	if *expFlag == "all" {
		for _, e := range exp.Suite() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}
	for _, id := range ids {
		e, err := exp.Find(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("\n### %s — %s\n", e.ID, e.About)
		exp.RunAndPrint(e, a, os.Stdout)
		fmt.Printf("[%s done in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
