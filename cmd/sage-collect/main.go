// Command sage-collect runs the Policy Collector: it rolls the kernel CC
// schemes through the Set I / Set II environment grids and writes the pool
// of policies to disk (phase 1 of Fig. 3). Collection happens once; training
// afterwards never touches an environment.
//
// Usage:
//
//	sage-collect -out pool.gob.gz -level small -seti-dur 10s -setii-dur 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
)

func main() {
	var (
		out      = flag.String("out", "pool.gob.gz", "output pool file")
		level    = flag.String("level", "tiny", "grid density: tiny|small|full")
		setIDur  = flag.Duration("seti-dur", 10*time.Second, "Set I scenario duration")
		setIIDur = flag.Duration("setii-dur", 30*time.Second, "Set II scenario duration")
		schemes  = flag.String("schemes", "", "comma-separated schemes (default: the 13-scheme pool)")
		window   = flag.Int("window", 0, "uniform observation window (0 = the default 10/200/1000)")
		parallel = flag.Int("parallel", 0, "workers (0 = NumCPU)")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	lvl, err := parseLevel(*level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := cc.PoolNames()
	if *schemes != "" {
		names = strings.Split(*schemes, ",")
	}
	grCfg := gr.Config{}
	if *window > 0 {
		grCfg = grCfg.WithUniformWindow(*window)
	}
	scens := append(
		netem.SetI(netem.SetIOptions{Level: lvl, Duration: sim.FromSeconds(setIDur.Seconds()), Seed: *seed}),
		netem.SetII(netem.SetIIOptions{Level: lvl, Duration: sim.FromSeconds(setIIDur.Seconds()), Seed: *seed})...)

	fmt.Printf("collecting %d schemes x %d environments...\n", len(names), len(scens))
	start := time.Now()
	pool := collector.Collect(names, scens, collector.Options{GR: grCfg, Parallel: *parallel})
	fmt.Printf("pool: %d trajectories, %d transitions (%s)\n",
		len(pool.Trajs), pool.Transitions(), time.Since(start).Round(time.Second))
	if err := pool.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func parseLevel(s string) (netem.GridLevel, error) {
	switch s {
	case "tiny":
		return netem.GridTiny, nil
	case "small":
		return netem.GridSmall, nil
	case "full":
		return netem.GridFull, nil
	}
	return 0, fmt.Errorf("unknown level %q (want tiny|small|full)", s)
}
