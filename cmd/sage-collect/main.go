// Command sage-collect runs the Policy Collector: it rolls the kernel CC
// schemes through the Set I / Set II environment grids and writes the pool
// of policies to disk (phase 1 of Fig. 3). Collection happens once; training
// afterwards never touches an environment.
//
// Usage:
//
//	sage-collect -out pool.gob.gz -level small -seti-dur 10s -setii-dur 30s
//	sage-collect -level small -progress -metrics pool.jsonl -pprof :6060
//	sage-collect -out pool.gob.gz -resume   # continue an interrupted run
//	sage-collect -doctor pool.gob.gz -clean pool.clean.gob.gz
//
// The -doctor mode examines an existing pool instead of collecting: every
// trajectory is validated (non-finite states/actions/rewards, truncated
// episodes, out-of-range values, frozen-state flows), bad ones are
// reported to <pool>.quarantine.jsonl, and -clean optionally writes a
// sanitized copy. Collection itself applies the same gate by default
// (-quality=false disables it).
//
// With -progress, a rollouts done/total line with transitions/sec and ETA
// is printed as workers finish; with -metrics, one JSON line per collected
// trajectory (scheme, env, steps, score) is written; with -pprof, the Go
// profiling endpoints are served for the run.
//
// SIGINT/SIGTERM drain the workers, save the completed cells to
// <out>.partial alongside a <out>.manifest ledger, and exit with status
// 130; rerunning with -resume skips the finished cells and produces a pool
// identical to an uninterrupted run.
//
// With -agent, the process is a distributed collection agent instead: it
// connects to a sage-coord coordinator, leases cells, and ships shards
// back until the campaign completes. Exit status (shared with sage-train
// -worker): 0 campaign complete, 4 lease lost / fenced off (the
// coordinator evicted this session — relaunch for a fresh one), 130
// signal drain, 2 usage error, 1 fatal error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/dist"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// trajRecord is the JSONL schema of -metrics: one line per trajectory.
type trajRecord struct {
	Scheme    string  `json:"scheme"`
	Env       string  `json:"env"`
	MultiFlow bool    `json:"multi_flow"`
	Steps     int     `json:"steps"`
	Score     float64 `json:"score"`
}

func main() {
	var (
		out       = flag.String("out", "pool.gob.gz", "output pool file")
		level     = flag.String("level", "tiny", "grid density: tiny|small|full")
		setIDur   = flag.Duration("seti-dur", 10*time.Second, "Set I scenario duration")
		setIIDur  = flag.Duration("setii-dur", 30*time.Second, "Set II scenario duration")
		schemes   = flag.String("schemes", "", "comma-separated schemes (default: the 13-scheme pool)")
		window    = flag.Int("window", 0, "uniform observation window (0 = the default 10/200/1000)")
		parallel  = flag.Int("parallel", 0, "workers (0 = NumCPU)")
		seed      = flag.Int64("seed", 1, "seed")
		resume    = flag.Bool("resume", false, "skip cells finished by a previous interrupted run (reads <out>.partial and <out>.manifest)")
		metrics   = flag.String("metrics", "", "write per-trajectory records as JSONL to this file")
		progress  = flag.Bool("progress", false, "print a live rollouts/transitions progress line with ETA")
		pprofAddr = flag.String("pprof", "", "serve pprof+expvar on this address (e.g. :6060)")
		doctor    = flag.String("doctor", "", "examine an existing pool file instead of collecting: quarantine report to <pool>.quarantine.jsonl, exit 3 if bad trajectories found")
		clean     = flag.String("clean", "", "with -doctor: also write the sanitized pool to this file")
		quality   = flag.Bool("quality", true, "quarantine bad trajectories from the collected pool before saving (report: <out>.quarantine.jsonl)")
		agent     = flag.String("agent", "", "run as a distributed collection agent against the sage-coord coordinator at this address (host:port or unix:/path)")
		agentID   = flag.String("agent-id", "", "agent identity for leases and eviction (default host:pid)")
		rpcTO     = flag.Duration("rpc-timeout", 0, "agent: per-RPC deadline before the call is retried on a fresh connection (0 = 10s default, negative disables)")
		redials   = flag.Int("redial-attempts", 0, "agent: consecutive failed dials tolerated before giving up (0 = default 10); raise to ride out long coordinator outages")
	)
	flag.Parse()

	if *doctor != "" {
		os.Exit(runDoctor(*doctor, *clean))
	}
	if *agent != "" {
		os.Exit(runAgent(*agent, *agentID, *parallel, *pprofAddr, *rpcTO, *redials))
	}

	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}

	lvl, err := netem.ParseLevel(*level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := cc.PoolNames()
	if *schemes != "" {
		names = strings.Split(*schemes, ",")
	}
	// Validate scheme names before any work: a typo fails in microseconds
	// with the known list, not hours into a campaign.
	if err := cc.Validate(names...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	grCfg := gr.Config{}
	if *window > 0 {
		grCfg = grCfg.WithUniformWindow(*window)
	}
	// Open the metrics sink before the (possibly long) collection so a
	// bad path fails in milliseconds, not after the run.
	var emit *telemetry.JSONL
	if *metrics != "" {
		emit, err = telemetry.CreateJSONL(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	scens := append(
		netem.SetI(netem.SetIOptions{Level: lvl, Duration: sim.FromSeconds(setIDur.Seconds()), Seed: *seed}),
		netem.SetII(netem.SetIIOptions{Level: lvl, Duration: sim.FromSeconds(setIIDur.Seconds()), Seed: *seed})...)

	manifestPath := *out + ".manifest"
	partialPath := *out + ".partial"

	// Prior state: with -resume, reload the partial pool and intersect it
	// with the manifest's "ok" cells; both must agree that a cell finished
	// before it is skipped (the manifest alone could claim a cell whose
	// partial pool never reached disk). Without -resume, stale leftovers
	// from an older interrupted campaign are discarded.
	var prior *collector.Pool
	skip := map[collector.CellKey]bool{}
	if *resume {
		if p, err := collector.Load(partialPath); err == nil {
			prior = p
		} else if !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
		}
	} else {
		os.Remove(manifestPath)
		os.Remove(partialPath)
	}
	manifest, recorded, err := collector.OpenManifest(manifestPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer manifest.Close()
	if prior != nil {
		have := prior.Cells()
		for cell, status := range recorded {
			if status == "ok" && have[cell] {
				skip[cell] = true
			}
		}
		// Keep only the trajectories we actually skip; anything else is
		// re-collected, so dropping it avoids duplicate cells.
		kept := &collector.Pool{GR: prior.GR}
		for _, tr := range prior.Trajs {
			if skip[collector.CellKey{Scheme: tr.Scheme, Env: tr.Env}] {
				kept.Trajs = append(kept.Trajs, tr)
			}
		}
		prior = kept
		fmt.Printf("resume: skipping %d finished cells\n", len(skip))
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	fmt.Printf("collecting %d schemes x %d environments...\n", len(names), len(scens))
	var meter *telemetry.Progress
	if *progress {
		meter = telemetry.NewProgress(os.Stdout, "rollouts", int64(len(names)*len(scens)), time.Second).ExtraLabel("transitions")
	}
	start := time.Now()
	pool, cerr := collector.Collect(ctx, names, scens, collector.Options{
		GR:       grCfg,
		Parallel: *parallel,
		Progress: meter,
		Skip: func(scheme, env string) bool {
			return skip[collector.CellKey{Scheme: scheme, Env: env}]
		},
		OnCell: manifest.Record,
	})
	meter.Finish()

	merged := pool
	if prior != nil && len(prior.Trajs) > 0 {
		merged, err = collector.Merge(prior, pool)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// Canonical order: a resumed campaign's pool is bitwise-identical to an
	// uninterrupted run regardless of where the interruption fell.
	merged.SortByCell()

	if cerr != nil {
		// Interrupted: persist what finished and leave the ledger behind.
		if err := merged.Save(partialPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		manifest.Close()
		fmt.Printf("interrupted: %d/%d cells done; saved %s\n",
			len(merged.Trajs), len(names)*len(scens), partialPath)
		fmt.Printf("rerun with -resume to continue\n")
		os.Exit(130)
	}

	fmt.Printf("pool: %d trajectories, %d transitions (%s)\n",
		len(merged.Trajs), merged.Transitions(), time.Since(start).Round(time.Second))
	for _, f := range merged.Failed {
		fmt.Fprintf(os.Stderr, "failed cell: %s/%s: %s\n", f.Scheme, f.Env, f.Err)
	}

	if *quality {
		sane, rep := collector.Sanitize(merged, collector.QualityConfig{})
		if rep.Quarantined > 0 {
			sidecar := *out + ".quarantine.jsonl"
			if err := rep.WriteSidecar(sidecar); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("quality: quarantined %d/%d trajectories (report: %s)\n",
				rep.Quarantined, rep.Total, sidecar)
			merged = sane
		}
	}

	if emit != nil {
		for _, tr := range merged.Trajs {
			emit.Emit(trajRecord{
				Scheme: tr.Scheme, Env: tr.Env, MultiFlow: tr.MultiFlow,
				Steps: len(tr.Steps), Score: tr.Score,
			})
		}
		if err := emit.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := merged.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The campaign is safely on disk; the resume state has served its
	// purpose.
	manifest.Close()
	os.Remove(manifestPath)
	os.Remove(partialPath)
	fmt.Printf("wrote %s\n", *out)
}

// runDoctor examines an existing pool: it prints a per-reason summary,
// writes the quarantine sidecar, and optionally writes a sanitized copy.
// Exit status: 0 clean, 3 bad trajectories found, 1 I/O error.
func runDoctor(path, cleanOut string) int {
	pool, err := collector.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	sane, rep := collector.Sanitize(pool, collector.QualityConfig{})
	fmt.Printf("doctor: %d trajectories, %d transitions\n", rep.Total, pool.Transitions())
	if rep.Quarantined == 0 {
		fmt.Println("doctor: pool is clean")
		if cleanOut != "" {
			if err := sane.Save(cleanOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("wrote %s\n", cleanOut)
		}
		return 0
	}
	byReason := map[string]int{}
	for _, is := range rep.Issues {
		byReason[is.Reason]++
	}
	reasons := make([]string, 0, len(byReason))
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Printf("doctor: %4d x %s\n", byReason[reason], reason)
	}
	sidecar := path + ".quarantine.jsonl"
	if err := rep.WriteSidecar(sidecar); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("doctor: quarantined %d/%d trajectories (report: %s)\n",
		rep.Quarantined, rep.Total, sidecar)
	if cleanOut != "" {
		if err := sane.Save(cleanOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s (%d trajectories)\n", cleanOut, len(sane.Trajs))
	}
	return 3
}

// runAgent is the -agent mode: one distributed collection agent driven
// by a sage-coord coordinator. Exit status: 0 campaign complete, 4 lease
// revoked (session evicted), 130 signal drain, 1 fatal error, 2 usage.
func runAgent(coordAddr, id string, parallel int, pprofAddr string, rpcTimeout time.Duration, redials int) int {
	// A bad coordinator address must fail before any connection attempt
	// burns through its redial budget.
	if _, _, err := dist.ParseAddr(coordAddr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "agent"
		}
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if pprofAddr != "" {
		if _, err := telemetry.ServeDebug(pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("pprof: http://%s/debug/pprof/\n", pprofAddr)
	}
	reg := telemetry.NewRegistry()
	reg.PublishExpvar("sage-collect-agent")
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	fmt.Printf("agent %s: joining coordinator %s\n", id, coordAddr)
	err := dist.RunAgent(ctx, dist.AgentConfig{
		Coordinator:    coordAddr,
		ID:             id,
		Parallel:       parallel,
		RPCTimeout:     rpcTimeout,
		RedialAttempts: redials,
		Metrics:        reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	switch {
	case err == nil:
		fmt.Printf("agent %s: campaign complete\n", id)
		return 0
	case errors.Is(err, dist.ErrRevoked):
		// Distinct from both clean completion and a crash: the session is
		// dead but the host is fine, so a supervisor should relaunch.
		fmt.Fprintf(os.Stderr, "agent %s: %v\n", id, err)
		return 4
	case errors.Is(err, context.Canceled), ctx.Err() != nil:
		fmt.Printf("agent %s: drained on signal\n", id)
		return 130
	default:
		fmt.Fprintf(os.Stderr, "agent %s: %v\n", id, err)
		return 1
	}
}
