// Command sage-collect runs the Policy Collector: it rolls the kernel CC
// schemes through the Set I / Set II environment grids and writes the pool
// of policies to disk (phase 1 of Fig. 3). Collection happens once; training
// afterwards never touches an environment.
//
// Usage:
//
//	sage-collect -out pool.gob.gz -level small -seti-dur 10s -setii-dur 30s
//	sage-collect -level small -progress -metrics pool.jsonl -pprof :6060
//
// With -progress, a rollouts done/total line with transitions/sec and ETA
// is printed as workers finish; with -metrics, one JSON line per collected
// trajectory (scheme, env, steps, score) is written; with -pprof, the Go
// profiling endpoints are served for the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// trajRecord is the JSONL schema of -metrics: one line per trajectory.
type trajRecord struct {
	Scheme    string  `json:"scheme"`
	Env       string  `json:"env"`
	MultiFlow bool    `json:"multi_flow"`
	Steps     int     `json:"steps"`
	Score     float64 `json:"score"`
}

func main() {
	var (
		out       = flag.String("out", "pool.gob.gz", "output pool file")
		level     = flag.String("level", "tiny", "grid density: tiny|small|full")
		setIDur   = flag.Duration("seti-dur", 10*time.Second, "Set I scenario duration")
		setIIDur  = flag.Duration("setii-dur", 30*time.Second, "Set II scenario duration")
		schemes   = flag.String("schemes", "", "comma-separated schemes (default: the 13-scheme pool)")
		window    = flag.Int("window", 0, "uniform observation window (0 = the default 10/200/1000)")
		parallel  = flag.Int("parallel", 0, "workers (0 = NumCPU)")
		seed      = flag.Int64("seed", 1, "seed")
		metrics   = flag.String("metrics", "", "write per-trajectory records as JSONL to this file")
		progress  = flag.Bool("progress", false, "print a live rollouts/transitions progress line with ETA")
		pprofAddr = flag.String("pprof", "", "serve pprof+expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}

	lvl, err := parseLevel(*level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := cc.PoolNames()
	if *schemes != "" {
		names = strings.Split(*schemes, ",")
	}
	grCfg := gr.Config{}
	if *window > 0 {
		grCfg = grCfg.WithUniformWindow(*window)
	}
	// Open the metrics sink before the (possibly long) collection so a
	// bad path fails in milliseconds, not after the run.
	var emit *telemetry.JSONL
	if *metrics != "" {
		emit, err = telemetry.CreateJSONL(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	scens := append(
		netem.SetI(netem.SetIOptions{Level: lvl, Duration: sim.FromSeconds(setIDur.Seconds()), Seed: *seed}),
		netem.SetII(netem.SetIIOptions{Level: lvl, Duration: sim.FromSeconds(setIIDur.Seconds()), Seed: *seed})...)

	fmt.Printf("collecting %d schemes x %d environments...\n", len(names), len(scens))
	var meter *telemetry.Progress
	if *progress {
		meter = telemetry.NewProgress(os.Stdout, "rollouts", int64(len(names)*len(scens)), time.Second).ExtraLabel("transitions")
	}
	start := time.Now()
	pool := collector.Collect(names, scens, collector.Options{GR: grCfg, Parallel: *parallel, Progress: meter})
	meter.Finish()
	fmt.Printf("pool: %d trajectories, %d transitions (%s)\n",
		len(pool.Trajs), pool.Transitions(), time.Since(start).Round(time.Second))

	if emit != nil {
		for _, tr := range pool.Trajs {
			emit.Emit(trajRecord{
				Scheme: tr.Scheme, Env: tr.Env, MultiFlow: tr.MultiFlow,
				Steps: len(tr.Steps), Score: tr.Score,
			})
		}
		if err := emit.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := pool.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func parseLevel(s string) (netem.GridLevel, error) {
	switch s {
	case "tiny":
		return netem.GridTiny, nil
	case "small":
		return netem.GridSmall, nil
	case "full":
		return netem.GridFull, nil
	}
	return 0, fmt.Errorf("unknown level %q (want tiny|small|full)", s)
}
