//go:build integration

// Kill-and-resume integration test: run the real sage-collect binary, SIGINT
// it mid-campaign, rerun with -resume, and require the final pool to be
// deeply equal to an uninterrupted run's. Build-tagged so the tier-1 suite
// stays hermetic; CI runs it with -tags integration.
package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sage/internal/collector"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sage-collect")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func collectArgs(out string) []string {
	return []string{
		"-out", out,
		"-level", "tiny",
		"-seti-dur", "4s",
		"-setii-dur", "8s",
		"-parallel", "2",
	}
}

func TestKillAndResume(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()

	// Reference: an uninterrupted campaign.
	refPool := filepath.Join(dir, "ref.gob.gz")
	if out, err := exec.Command(bin, collectArgs(refPool)...).CombinedOutput(); err != nil {
		t.Fatalf("uninterrupted run: %v\n%s", err, out)
	}
	want, err := collector.Load(refPool)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted campaign: SIGINT once the manifest shows completed cells.
	outPool := filepath.Join(dir, "pool.gob.gz")
	manifest := outPool + ".manifest"
	cmd := exec.Command(bin, collectArgs(outPool)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("manifest never gained an ok entry")
		}
		if raw, err := os.ReadFile(manifest); err == nil && strings.Contains(string(raw), `"ok"`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("interrupted run exit = %v, want status 130", err)
	}
	if _, err := os.Stat(outPool + ".partial"); err != nil {
		t.Fatalf("no partial pool after interrupt: %v", err)
	}
	if _, err := os.Stat(outPool); err == nil {
		t.Fatal("final pool written despite interrupt")
	}

	// Resume and finish.
	args := append(collectArgs(outPool), "-resume")
	if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	got, err := collector.Load(outPool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed pool differs from uninterrupted run: %d vs %d trajs",
			len(got.Trajs), len(want.Trajs))
	}
	// Resume state is cleaned up after a successful finish.
	if _, err := os.Stat(manifest); err == nil {
		t.Fatal("manifest left behind after success")
	}
	if _, err := os.Stat(outPool + ".partial"); err == nil {
		t.Fatal("partial pool left behind after success")
	}
}
