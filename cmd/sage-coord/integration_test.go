//go:build integration

// Distributed-collection integration test: run the real sage-coord binary
// with two real sage-collect agents, SIGKILL one agent mid-cell, and
// require the merged pool to be byte-identical to a single-process
// sage-collect run over the same campaign. Build-tagged so the tier-1
// suite stays hermetic; CI runs it with -tags integration.
package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

var campaignArgs = []string{
	"-schemes", "cubic,vegas",
	"-level", "tiny",
	"-seti-dur", "4s",
	"-setii-dur", "8s",
	"-seed", "1",
}

// waitExit waits for a process with a deadline, killing it on timeout.
func waitExit(t *testing.T, name string, cmd *exec.Cmd, timeout time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		t.Fatalf("%s did not exit within %s", name, timeout)
		return nil
	}
}

func TestDistributedCollectionSurvivesAgentKill(t *testing.T) {
	bins := t.TempDir()
	coordBin := buildBinary(t, bins, "sage-coord", ".")
	collectBin := buildBinary(t, bins, "sage-collect", "../sage-collect")
	dir := t.TempDir()

	// Reference: a single-process run of the same campaign.
	refPool := filepath.Join(dir, "ref.gob.gz")
	refArgs := append([]string{"-out", refPool, "-parallel", "2"}, campaignArgs...)
	if out, err := exec.Command(collectBin, refArgs...).CombinedOutput(); err != nil {
		t.Fatalf("single-process run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(refPool)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator on an ephemeral port; it prints the bound address.
	outPool := filepath.Join(dir, "pool.gob.gz")
	coordArgs := append([]string{"-mode", "collect", "-listen", "127.0.0.1:0",
		"-out", outPool, "-lease-ttl", "5s"}, campaignArgs...)
	coord := exec.Command(coordBin, coordArgs...)
	coordOut, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()
	var addr string
	sc := bufio.NewScanner(coordOut)
	for sc.Scan() {
		line := sc.Text()
		t.Logf("coord: %s", line)
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatal("coordinator never announced its address")
	}
	go func() { // keep draining so the coordinator never blocks on stdout
		for sc.Scan() {
			t.Logf("coord: %s", sc.Text())
		}
	}()

	agent := func(id string) *exec.Cmd {
		cmd := exec.Command(collectBin, "-agent", addr, "-agent-id", id, "-parallel", "2")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("agent %s: %v", id, err)
		}
		return cmd
	}
	victim := agent("victim")
	survivor := agent("survivor")

	// SIGKILL the victim once the campaign is demonstrably underway: its
	// in-flight cells must be reassigned to the survivor.
	manifest := outPool + ".manifest"
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("manifest never gained an ok entry")
		}
		if raw, err := os.ReadFile(manifest); err == nil && strings.Contains(string(raw), `"ok"`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitExit(t, "victim", victim, time.Minute) // killed: error expected, just reap it

	if err := waitExit(t, "survivor", survivor, 5*time.Minute); err != nil {
		t.Fatalf("surviving agent: %v", err)
	}
	if err := waitExit(t, "coordinator", coord, time.Minute); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	got, err := os.ReadFile(outPool)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed pool differs from single-process run (%d vs %d bytes)", len(got), len(want))
	}
	// Resume state is cleaned up after a successful merge.
	if _, err := os.Stat(manifest); err == nil {
		t.Fatal("manifest left behind after success")
	}
	if _, err := os.Stat(outPool + ".shards"); err == nil {
		t.Fatal("shard directory left behind after success")
	}
}
