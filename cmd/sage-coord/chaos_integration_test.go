//go:build integration

// Chaos soak tests: the real binaries under a seeded fault-injecting
// transport (frame drops/dups/truncations plus periodic partitions),
// with the coordinator SIGKILL'd mid-run and restarted. Collection must
// still produce a pool byte-identical to a fault-free single-process
// run; training must still produce a model byte-identical to in-process
// data-parallel training. Build-tagged so the tier-1 suite stays
// hermetic; CI runs these with -tags integration.
package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"sage/internal/core"
)

// launchCoord starts the coordinator binary and scans its stdout for the
// announced listen address, leaving a goroutine draining the rest.
func launchCoord(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var addr string
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		t.Logf("coord: %s", line)
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		t.Fatal("coordinator never announced its address")
	}
	go func() {
		for sc.Scan() {
			t.Logf("coord: %s", sc.Text())
		}
	}()
	return cmd, addr
}

// waitForFile polls until path exists and test() accepts its contents.
func waitForFile(t *testing.T, path, what string, timeout time.Duration, test func([]byte) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("%s never appeared at %s", what, path)
		}
		if raw, err := os.ReadFile(path); err == nil && test(raw) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosSoakCollectionSurvivesCoordinatorKill(t *testing.T) {
	bins := t.TempDir()
	coordBin := buildBinary(t, bins, "sage-coord", ".")
	collectBin := buildBinary(t, bins, "sage-collect", "../sage-collect")
	dir := t.TempDir()

	// Reference: a fault-free single-process run of the same campaign.
	refPool := filepath.Join(dir, "ref.gob.gz")
	refArgs := append([]string{"-out", refPool, "-parallel", "2"}, campaignArgs...)
	if out, err := exec.Command(collectBin, refArgs...).CombinedOutput(); err != nil {
		t.Fatalf("single-process run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(refPool)
	if err != nil {
		t.Fatal(err)
	}

	outPool := filepath.Join(dir, "pool.gob.gz")
	coordArgs := append([]string{"-mode", "collect",
		"-out", outPool, "-lease-ttl", "15s", "-hedge-factor", "3",
		"-chaos", "seed=7,drop=0.04,dup=0.08,trunc=0.02,part-every=8s,part-for=750ms"},
		campaignArgs...)
	coord, addr := launchCoord(t, coordBin, append([]string{"-listen", "127.0.0.1:0"}, coordArgs...)...)
	defer coord.Process.Kill()

	agent := func(id string) *exec.Cmd {
		cmd := exec.Command(collectBin, "-agent", addr, "-agent-id", id,
			"-parallel", "2", "-rpc-timeout", "5s", "-redial-attempts", "500")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("agent %s: %v", id, err)
		}
		return cmd
	}
	a1, a2 := agent("chaos-1"), agent("chaos-2")

	// SIGKILL the coordinator once at least one cell has committed: the
	// WAL and manifest must carry the campaign across the crash.
	waitForFile(t, outPool+".manifest", "manifest ok entry", 2*time.Minute,
		func(raw []byte) bool { return strings.Contains(string(raw), `"ok"`) })
	if err := coord.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	coord.Wait()
	if _, err := os.Stat(outPool + ".wal"); err != nil {
		t.Fatalf("no WAL on disk after coordinator SIGKILL: %v", err)
	}

	// Restart on the same address with -resume while the agents are still
	// redialing; the campaign continues where the WAL says it was.
	coord2, _ := launchCoord(t, coordBin,
		append([]string{"-listen", addr, "-resume"}, coordArgs...)...)
	defer coord2.Process.Kill()

	if err := waitExit(t, "agent chaos-1", a1, 8*time.Minute); err != nil {
		t.Fatalf("agent chaos-1: %v", err)
	}
	if err := waitExit(t, "agent chaos-2", a2, 8*time.Minute); err != nil {
		t.Fatalf("agent chaos-2: %v", err)
	}
	if err := waitExit(t, "restarted coordinator", coord2, 2*time.Minute); err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}

	got, err := os.ReadFile(outPool)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pool after chaos + coordinator kill differs from fault-free run (%d vs %d bytes)", len(got), len(want))
	}
	for _, leftover := range []string{outPool + ".manifest", outPool + ".shards", outPool + ".wal"} {
		if _, err := os.Stat(leftover); err == nil {
			t.Fatalf("%s left behind after success", leftover)
		}
	}
}

func TestChaosSoakTrainingResumesBitwise(t *testing.T) {
	bins := t.TempDir()
	coordBin := buildBinary(t, bins, "sage-coord", ".")
	collectBin := buildBinary(t, bins, "sage-collect", "../sage-collect")
	trainBin := buildBinary(t, bins, "sage-train", "../sage-train")
	dir := t.TempDir()

	pool := filepath.Join(dir, "pool.gob.gz")
	collectArgs := []string{"-out", pool, "-schemes", "cubic", "-level", "tiny",
		"-seti-dur", "2s", "-setii-dur", "4s", "-seed", "1", "-parallel", "2"}
	if out, err := exec.Command(collectBin, collectArgs...).CombinedOutput(); err != nil {
		t.Fatalf("collect pool: %v\n%s", err, out)
	}

	// Reference: in-process data-parallel training (no sentinel — the
	// distributed coordinator runs the bare learner).
	archArgs := []string{"-steps", "400", "-enc", "16", "-gru", "8", "-seed", "3"}
	refModel := filepath.Join(dir, "ref.model")
	refArgs := append([]string{"-pool", pool, "-out", refModel, "-workers", "2",
		"-sentinel=false"}, archArgs...)
	if out, err := exec.Command(trainBin, refArgs...).CombinedOutput(); err != nil {
		t.Fatalf("in-process training: %v\n%s", err, out)
	}

	distModel := filepath.Join(dir, "dist.model")
	ckpt := filepath.Join(dir, "train.ckpt")
	coordArgs := append([]string{"-mode", "train", "-pool", pool,
		"-model-out", distModel, "-train-workers", "2",
		"-checkpoint", ckpt, "-checkpoint-every", "25",
		"-chaos", "seed=3,drop=0.03,dup=0.08,trunc=0.02"}, archArgs...)
	coord, addr := launchCoord(t, coordBin, append([]string{"-listen", "127.0.0.1:0"}, coordArgs...)...)
	defer coord.Process.Kill()

	worker := func(idx int) *exec.Cmd {
		cmd := exec.Command(trainBin, "-worker", addr, "-worker-index", strconv.Itoa(idx),
			"-pool", pool, "-redial-attempts", "500")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("worker %d: %v", idx, err)
		}
		return cmd
	}
	w0, w1 := worker(0), worker(1)

	// SIGKILL the coordinator mid-barrier, after at least one checkpoint
	// committed; the restart resumes from it bit for bit.
	waitForFile(t, ckpt, "training checkpoint", 3*time.Minute,
		func(raw []byte) bool { return len(raw) > 0 })
	if err := coord.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	coord.Wait()

	coord2, _ := launchCoord(t, coordBin, append([]string{"-listen", addr}, coordArgs...)...)
	defer coord2.Process.Kill()

	if err := waitExit(t, "worker 0", w0, 8*time.Minute); err != nil {
		t.Fatalf("worker 0: %v", err)
	}
	if err := waitExit(t, "worker 1", w1, 8*time.Minute); err != nil {
		t.Fatalf("worker 1: %v", err)
	}
	if err := waitExit(t, "restarted coordinator", coord2, 2*time.Minute); err != nil {
		t.Fatalf("restarted coordinator: %v", err)
	}

	assertModelParamsBitwise(t, distModel, refModel)
}

// assertModelParamsBitwise compares two saved models parameter by
// parameter. The raw files are NOT compared: Model.Save gob-encodes the
// whole policy including forward-pass scratch buffers, which an
// in-process learner has exercised and the coordinator's master (params
// arrive by all-reduce, never by forward pass) has not. The training
// guarantee is on the learned parameters, mask, and GR config.
func assertModelParamsBitwise(t *testing.T, gotPath, wantPath string) {
	t.Helper()
	got, err := core.LoadModel(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.LoadModel(wantPath)
	if err != nil {
		t.Fatal(err)
	}
	gp, wp := got.Policy.Params(), want.Policy.Params()
	if len(gp) != len(wp) {
		t.Fatalf("param tensor count %d vs %d", len(gp), len(wp))
	}
	for i := range gp {
		if gp[i].Name != wp[i].Name || !reflect.DeepEqual(gp[i].Data, wp[i].Data) {
			t.Fatalf("param %s differs from in-process training after chaos + coordinator kill", wp[i].Name)
		}
	}
	if !reflect.DeepEqual(got.Mask, want.Mask) || got.GR != want.GR {
		t.Fatal("model mask/GR config differs from in-process training")
	}
}
