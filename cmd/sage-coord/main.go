// Command sage-coord is the distributed control plane: it shards a
// collection campaign across remote sage-collect agents, or drives
// data-parallel CRR training across sage-train workers, over one small
// RPC protocol (internal/dist).
//
// Usage:
//
//	sage-coord -listen :7070 -out pool.gob.gz -level small -seti-dur 10s
//	sage-coord -mode train -listen :7070 -pool pool.gob.gz -out sage.model \
//	    -train-workers 2 -steps 20000 -checkpoint train.ckpt
//
// Collection mode owns the campaign: agents connect, lease (scheme, env)
// cells under a heartbeat-renewed TTL, and ship back checksummed pool
// shards; dead or stalled agents are evicted and their cells reassigned.
// Shards persist through internal/safeio next to a JSONL manifest, so a
// killed coordinator rerun with -resume re-admits verified cells and the
// final pool is byte-identical to an uninterrupted single-process
// sage-collect run.
//
// Train mode holds the master learner: per step every worker pushes its
// gradient shard, the coordinator all-reduces them in worker order,
// steps the optimizer, and broadcasts fresh parameters. The result is
// bitwise-identical to in-process -workers N training, and checkpoints
// carry the remote sampler positions, so worker or coordinator restarts
// resume exactly.
//
// SIGINT/SIGTERM drain: collection leaves the manifest and shards for
// -resume; training checkpoints the current step. Both exit 130.
//
// The coordinator also journals lease grants, shard completions, and
// committed barrier steps to a write-ahead log (<out>.wal in collect
// mode, <checkpoint>.wal in train mode) so even a SIGKILL'd coordinator
// restarted with -resume re-adopts in-flight leases instead of
// re-collecting them. With -hedge-factor, cells leased far longer than
// the fleet's typical completion time are speculatively re-leased to
// idle agents; the first checksummed shard wins. With -chaos, a seeded
// fault-injecting transport wraps every agent connection (drops,
// duplicated and truncated frames, latency, partitions) for soak
// testing the recovery machinery; see the README's chaos section.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sage/internal/cc"
	"sage/internal/chaos"
	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/dist"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/telemetry"
)

func main() {
	var (
		mode      = flag.String("mode", "collect", "service: collect|train")
		listen    = flag.String("listen", ":7070", "listen address (host:port or unix:/path)")
		leaseTTL  = flag.Duration("lease-ttl", 30*time.Second, "cell lease TTL; agents heartbeat at TTL/3")
		progress  = flag.Bool("progress", false, "print a live progress line")
		pprofAddr = flag.String("pprof", "", "serve pprof+expvar on this address (e.g. :6060)")
		chaosFlag = flag.String("chaos", "", "soak testing: inject seeded transport faults on every agent connection (key=value spec, e.g. seed=7,drop=0.02,dup=0.05,trunc=0.01,part-every=10s,part-for=1s)")
		hedge     = flag.Float64("hedge-factor", 0, "collect: speculatively re-lease a cell held longer than factor x the fleet's p75 completion time to an idle agent (0 disables; 3 is a sane start)")

		// Collection mode.
		out      = flag.String("out", "pool.gob.gz", "collect: output pool file")
		level    = flag.String("level", "tiny", "collect: grid density: tiny|small|full")
		setIDur  = flag.Duration("seti-dur", 10*time.Second, "collect: Set I scenario duration")
		setIIDur = flag.Duration("setii-dur", 30*time.Second, "collect: Set II scenario duration")
		schemes  = flag.String("schemes", "", "collect: comma-separated schemes (default: the 13-scheme pool)")
		window   = flag.Int("window", 0, "collect: uniform observation window (0 = default 10/200/1000)")
		seed     = flag.Int64("seed", 1, "seed")
		resume   = flag.Bool("resume", false, "collect: re-admit cells finished by a previous coordinator (reads <out>.shards + <out>.manifest)")
		quality  = flag.Bool("quality", true, "collect: quarantine bad trajectories before saving (report: <out>.quarantine.jsonl)")

		// Train mode.
		poolPath  = flag.String("pool", "pool.gob.gz", "train: input pool file")
		modelOut  = flag.String("model-out", "sage.model", "train: output model file")
		steps     = flag.Int("steps", 2000, "train: total CRR gradient steps")
		enc       = flag.Int("enc", 32, "train: encoder width")
		gru       = flag.Int("gru", 16, "train: GRU width")
		kMix      = flag.Int("gmm", 3, "train: GMM components")
		atoms     = flag.Int("atoms", 21, "train: critic atoms")
		mask      = flag.String("mask", "full", "train: input mask: full|no-minmax|no-rttvar|no-lossinf")
		nWorkers  = flag.Int("train-workers", 2, "train: data-parallel worker count")
		ckpt      = flag.String("checkpoint", "", "train: checkpoint file (written every checkpoint-every steps; resumed from if present)")
		ckptEvery = flag.Int("checkpoint-every", 1000, "train: checkpoint period in steps")
		ckptKeep  = flag.Int("checkpoint-keep", 3, "train: previous checkpoint generations kept")
		logEvery  = flag.Int("log-every", 100, "train: progress period in steps")
	)
	flag.Parse()

	// A bad listen address or fault spec must fail in microseconds,
	// before any state is touched.
	if _, _, err := dist.ParseAddr(*listen); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var faultSpec chaos.FaultSpec
	if *chaosFlag != "" {
		var err error
		if faultSpec, err = chaos.ParseFaultSpec(*chaosFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	switch *mode {
	case "collect":
		os.Exit(runCollect(ctx, collectOpts{
			listen: *listen, out: *out, level: *level,
			setIDur: *setIDur, setIIDur: *setIIDur,
			schemes: *schemes, window: *window, seed: *seed,
			leaseTTL: *leaseTTL, resume: *resume, quality: *quality,
			progress: *progress, hedge: *hedge, chaos: faultSpec,
		}))
	case "train":
		os.Exit(runTrain(ctx, trainOpts{
			listen: *listen, poolPath: *poolPath, modelOut: *modelOut,
			steps: *steps, enc: *enc, gru: *gru, kMix: *kMix, atoms: *atoms,
			mask: *mask, workers: *nWorkers, seed: *seed,
			ckpt: *ckpt, ckptEvery: *ckptEvery, ckptKeep: *ckptKeep,
			logEvery: *logEvery, progress: *progress, chaos: faultSpec,
		}))
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want collect|train)\n", *mode)
		os.Exit(2)
	}
}

// listenAnnounce binds the listen address and prints the bound address
// (meaningful with ":0" in tests and scripts).
func listenAnnounce(spec string) (net.Listener, error) {
	network, addr, err := dist.ParseAddr(spec)
	if err != nil {
		return nil, err
	}
	if network == "unix" {
		os.Remove(addr)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	return ln, nil
}

// wrapChaos puts the fault-injecting transport in front of ln when a
// -chaos spec is active; every injected fault is counted and logged so a
// soak run's report can correlate faults with retries and hedges.
func wrapChaos(ln net.Listener, spec chaos.FaultSpec, reg *telemetry.Registry) net.Listener {
	if !spec.Active() {
		return ln
	}
	tr := chaos.NewTransport(spec)
	faults := reg.Counter("chaos.faults")
	tr.OnEvent = func(ev chaos.FaultEvent) {
		faults.Inc()
		logf("chaos: conn %d %s %s (%d bytes)", ev.Conn, ev.Dir, ev.Kind, ev.Bytes)
	}
	fmt.Printf("chaos: injecting transport faults on every agent connection (seed %d)\n", spec.Seed)
	return tr.Listener(ln)
}

type collectOpts struct {
	listen, out, level, schemes string
	setIDur, setIIDur           time.Duration
	window                      int
	seed                        int64
	leaseTTL                    time.Duration
	resume, quality, progress   bool
	hedge                       float64
	chaos                       chaos.FaultSpec
}

func runCollect(ctx context.Context, o collectOpts) int {
	names := cc.PoolNames()
	if o.schemes != "" {
		names = strings.Split(o.schemes, ",")
	}
	campaign := &dist.Campaign{
		Schemes:    names,
		Level:      o.level,
		SetIDurSec: o.setIDur.Seconds(),
		SetIIDur:   o.setIIDur.Seconds(),
		Seed:       o.seed,
		Window:     o.window,
	}
	reg := telemetry.NewRegistry()
	reg.PublishExpvar("sage-coord")
	fleet := telemetry.NewFleet()
	fleet.PublishExpvar("sage-coord.fleet")
	coord, err := dist.NewCoordinator(dist.CoordConfig{
		Campaign:     campaign,
		ShardDir:     o.out + ".shards",
		ManifestPath: o.out + ".manifest",
		WALPath:      o.out + ".wal",
		LeaseTTL:     o.leaseTTL,
		Resume:       o.resume,
		HedgeFactor:  o.hedge,
		Metrics:      reg,
		Fleet:        fleet,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if coord.Resumed() > 0 {
		fmt.Printf("resume: re-admitted %d finished cells\n", coord.Resumed())
	}
	ln, err := listenAnnounce(o.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var meter *telemetry.Progress
	if o.progress {
		meter = telemetry.NewProgress(os.Stdout, "cells", int64(coord.TotalCells()), time.Second)
		meter.Add(int64(coord.Resumed()))
	}
	go coord.Serve(wrapChaos(ln, o.chaos, reg))
	fmt.Printf("campaign: %d cells (%d schemes x %s grid), lease TTL %s\n",
		coord.TotalCells(), len(names), o.level, o.leaseTTL)

	waitErr := coord.Wait(ctx)
	if waitErr == nil {
		// Let connected agents hear the campaign-done verdict and hang up
		// before the listener goes away, so they exit cleanly.
		coord.DrainAgents(10 * time.Second)
	}
	coord.Shutdown()
	meter.Finish()
	if waitErr != nil {
		_, _, done, failed := coord.Tracker().Counts()
		fmt.Printf("interrupted: %d/%d cells done (%d failed); manifest and shards kept\n",
			done+failed, coord.TotalCells(), failed)
		fmt.Printf("rerun with -resume to continue\n")
		return 130
	}

	pool, err := coord.MergedPool()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range pool.Failed {
		fmt.Fprintf(os.Stderr, "failed cell: %s/%s: %s\n", f.Scheme, f.Env, f.Err)
	}
	if o.quality {
		sane, rep := collector.Sanitize(pool, collector.QualityConfig{})
		if rep.Quarantined > 0 {
			sidecar := o.out + ".quarantine.jsonl"
			if err := rep.WriteSidecar(sidecar); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("quality: quarantined %d/%d trajectories (report: %s)\n",
				rep.Quarantined, rep.Total, sidecar)
			pool = sane
		}
	}
	if err := pool.Save(o.out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	coord.CleanupResumeState()
	fmt.Printf("pool: %d trajectories, %d transitions\n", len(pool.Trajs), pool.Transitions())
	fmt.Printf("wrote %s\n", o.out)
	return 0
}

type trainOpts struct {
	listen, poolPath, modelOut, mask string
	steps, enc, gru, kMix, atoms     int
	workers                          int
	seed                             int64
	ckpt                             string
	ckptEvery, ckptKeep, logEvery    int
	progress                         bool
	chaos                            chaos.FaultSpec
}

func runTrain(ctx context.Context, o trainOpts) int {
	if o.workers < 2 {
		fmt.Fprintln(os.Stderr, "train mode needs -train-workers >= 2 (use sage-train for single-process training)")
		return 2
	}
	var m []int
	switch o.mask {
	case "full":
		m = nil
	case "no-minmax":
		m = gr.MaskNoMinMax()
	case "no-rttvar":
		m = gr.MaskNoRTTVar()
	case "no-lossinf":
		m = gr.MaskNoLossInflight()
	default:
		fmt.Fprintf(os.Stderr, "unknown mask %q\n", o.mask)
		return 2
	}
	pool, err := collector.Load(o.poolPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("pool: %d trajectories, %d transitions\n", len(pool.Trajs), pool.Transitions())
	ds := rl.BuildDataset(pool, m)
	if ds.Transitions() == 0 {
		fmt.Fprintln(os.Stderr, "no usable transitions in the pool")
		return 1
	}
	crrCfg := rl.CRRConfig{
		Policy:  nn.PolicyConfig{Enc: o.enc, Hidden: o.gru, ResBlocks: 2, K: o.kMix},
		Critic:  nn.CriticConfig{Hidden: 2 * o.enc, Atoms: o.atoms},
		Steps:   o.steps,
		Workers: o.workers,
		Seed:    o.seed,
	}
	var learner *rl.CRR
	done := 0
	if o.ckpt != "" {
		resumed, steps, from, err := rl.LoadCheckpointAuto(o.ckpt, ds)
		switch {
		case err == nil:
			learner = resumed
			done = steps
			fmt.Printf("resumed %s at step %d\n", from, steps)
		case rl.IsNotExist(err):
			// Fresh start.
		default:
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if learner == nil {
		learner = rl.NewCRR(ds, crrCfg)
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("sage-coord")
	var meter *telemetry.Progress
	if o.progress {
		remaining := o.steps - done
		if remaining < 0 {
			remaining = 0
		}
		meter = telemetry.NewProgress(os.Stdout, "train", int64(remaining), time.Second)
	}
	start := time.Now()
	stepCtr := reg.Counter("steps")
	onStep := func(s rl.TrainStats) {
		stepCtr.Inc()
		meter.Add(1)
		if o.ckpt != "" && s.Step%o.ckptEvery == 0 {
			if err := learner.SaveCheckpointRotate(o.ckpt, s.Step, o.ckptKeep); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if s.Step%o.logEvery == 0 && !o.progress {
			fmt.Printf("step %6d  critic %.4f  policy %.4f  (%s)\n",
				s.Step, s.CriticLoss, s.PolicyLoss, time.Since(start).Round(time.Second))
		}
	}
	coordCfg := dist.CoordConfig{
		Train: &dist.TrainConfig{
			Learner:    learner,
			Workers:    o.workers,
			StepsTotal: o.steps,
			Mask:       m,
			OnStep:     onStep,
		},
		Metrics: reg,
		Logf:    logf,
	}
	if o.ckpt != "" {
		// The barrier WAL rides next to the checkpoint: on a crash-restart
		// it tells the operator which step the fleet had actually
		// committed, versus the (possibly older) step the checkpoint
		// resumes from.
		coordCfg.WALPath = o.ckpt + ".wal"
		coordCfg.Resume = done > 0
	}
	coord, err := dist.NewCoordinator(coordCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if coordCfg.Resume && coord.LastEpoch() > done {
		fmt.Printf("wal: fleet had committed step %d; checkpoint resumes at %d, steps in between recompute\n",
			coord.LastEpoch(), done)
	}
	ln, err := listenAnnounce(o.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	go coord.Serve(wrapChaos(ln, o.chaos, reg))
	fmt.Printf("training: %d workers, %d total steps (resumed at %d)\n", o.workers, o.steps, done)

	waitErr := coord.Wait(ctx)
	if waitErr == nil {
		// Let workers receive the Done broadcast and hang up before the
		// listener goes away, so supervised workers exit 0.
		coord.DrainAgents(10 * time.Second)
	}
	coord.Shutdown()
	meter.Finish()
	if waitErr != nil {
		if o.ckpt != "" {
			if err := learner.SaveCheckpointRotate(o.ckpt, learner.StepsDone(), o.ckptKeep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("interrupted at step %d; checkpoint saved to %s — rerun to resume\n",
				learner.StepsDone(), o.ckpt)
		} else {
			fmt.Printf("interrupted at step %d (no -checkpoint set; progress lost)\n", learner.StepsDone())
		}
		return 130
	}
	model := &core.Model{Policy: learner.Policy, Mask: m, GR: pool.GR.Fill()}
	if model.Mask == nil {
		model.Mask = gr.MaskFull()
	}
	if err := model.Save(o.modelOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("wrote %s (policy: %d params)\n", o.modelOut, nn.ParamCount(model.Policy))
	return 0
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
