//go:build integration

// Overload soak: run the real daemon, measure its easy-load service rate,
// then drive it several times past capacity — with and without transport
// chaos — and assert the overload contract end to end: shed-not-crash,
// explicit answers only (never silence), bounded memory, no spurious
// watchdog demotion, and bounded recovery back to full service.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"sage/internal/chaos"
	"sage/internal/gr"
	"sage/internal/promote"
	"sage/internal/serve"
)

// soakRegistry builds a registry with two promoted generations and
// returns it with both ids (idB is the incumbent).
func soakRegistry(t *testing.T) (dir, idA, idB string) {
	t.Helper()
	dir = filepath.Join(t.TempDir(), "registry")
	r, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	idA, err = r.Publish(testModel(t, 1), promote.Meta{Provenance: "boot"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(idA, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	idB, err = r.Publish(testModel(t, 2), promote.Meta{Provenance: "trainer"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(idB, "gate passed"); err != nil {
		t.Fatal(err)
	}
	return dir, idA, idB
}

func daemonHealth(t *testing.T, sock string) serve.Health {
	t.Helper()
	cl, err := serve.DialTimeout(sock, 2*time.Second)
	if err != nil {
		t.Fatalf("health dial: %v", err)
	}
	defer cl.Close()
	cl.SetTimeout(2 * time.Second)
	doc, err := cl.Health()
	if err != nil {
		t.Fatalf("health verb: %v", err)
	}
	var h serve.Health
	if err := json.Unmarshal([]byte(doc), &h); err != nil {
		t.Fatalf("health doc %q: %v", doc, err)
	}
	return h
}

// execCommandOutput runs the binary in client mode and returns stdout.
func execCommandOutput(bin string, args ...string) (string, error) {
	out, err := exec.Command(bin, args...).Output()
	return string(out), err
}

// vmRSSKB reads the daemon's resident set from /proc.
func vmRSSKB(t *testing.T, pid int) int {
	t.Helper()
	raw, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		t.Fatalf("proc status: %v", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "VmRSS:") {
			f := strings.Fields(line)
			kb, err := strconv.Atoi(f[1])
			if err != nil {
				t.Fatalf("VmRSS %q: %v", line, err)
			}
			return kb
		}
	}
	t.Fatal("no VmRSS in proc status")
	return 0
}

func TestOverloadSoak(t *testing.T) {
	bin := buildBinary(t)
	regDir, _, idB := soakRegistry(t)
	cmd, sock := startServe(t, bin, "-registry", regDir,
		"-max-batch", "8", "-deadline", "1ms", "-workers", "1",
		"-max-inflight", "16", "-overload-eval", "5ms",
		"-watchdog-interval", "50ms", "-max-conns", "128")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	dial := func() (net.Conn, error) { return net.Dial("unix", sock) }

	// The swap verb arms the demotion watchdog, making "no spurious
	// demotion under overload" a real assertion rather than a vacuous one.
	cl, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Swap(idB); err != nil {
		t.Fatalf("arming swap: %v", err)
	}
	cl.Close()

	// Phase 1 — measure the easy-load service rate: a couple of paced
	// connections, far below every brownout rung.
	baseDur := 700 * time.Millisecond
	base := chaos.RunLoad(chaos.LoadSpec{
		Dial: dial, Conns: 2, Duration: baseDur,
		Interval: 5 * time.Millisecond, StateDim: gr.StateDim, Seed: 1,
	})
	if base.OK == 0 || base.Errors != 0 {
		t.Fatalf("baseline run unhealthy: %+v", base)
	}
	baseRate := float64(base.OK) / baseDur.Seconds()
	if h := daemonHealth(t, sock); !h.Ready() {
		t.Fatalf("daemon not ready after baseline: %+v", h)
	}
	rssBefore := vmRSSKB(t, cmd.Process.Pid)

	// Phase 2 — the soak: hot-looping connections at well over 3× the
	// measured service rate (24× the baseline connection count, unpaced).
	soakDur := 3 * time.Second
	soak := chaos.RunLoad(chaos.LoadSpec{
		Dial: dial, Conns: 48, Duration: soakDur,
		StateDim: gr.StateDim, Seed: 2, HighPriFrac: 0.25,
		Timeout: 5 * time.Second,
	})
	soakRate := float64(soak.Sent) / soakDur.Seconds()
	t.Logf("baseline %.0f served/s; soak offered %.0f calls/s (%.1fx): %+v, latency %+v",
		baseRate, soakRate, soakRate/baseRate, soak, soak.Latency.Summary())

	// Offered load actually exceeded 3× the easy-load service rate.
	if soakRate < 3*baseRate {
		t.Errorf("soak offered %.0f/s, want ≥ 3x baseline %.0f/s", soakRate, baseRate)
	}
	// Shed-not-crash, and never silence: every call answered explicitly.
	if soak.Errors != 0 {
		t.Errorf("soak produced %d silent/errored calls: %+v", soak.Errors, soak)
	}
	if soak.Sent != soak.Answered() {
		t.Errorf("accounting: sent %d != answered %d", soak.Sent, soak.Answered())
	}
	// Overload was explicit: typed OVERLOAD rejections or cheap-path
	// fallback decisions (brownout), in volume.
	if soak.Overload+soak.Fallback == 0 {
		t.Errorf("daemon absorbed %d calls with no explicit shedding/degradation", soak.Sent)
	}
	// Admitted flows kept being served from the policy throughout.
	if soak.OK == 0 {
		t.Error("no policy-served decisions during the soak")
	}
	// Latency stayed bounded for answered calls (the decision budget is
	// 250ms; overload replies pause the conn up to 100ms).
	if p99 := soak.Latency.Summary().P99; p99 > 1e6 {
		t.Errorf("answered-call p99 = %.0fµs, want bounded under overload", p99)
	}
	// Bounded memory: RSS growth over the soak stays far from queue-bloat
	// territory.
	rssAfter := vmRSSKB(t, cmd.Process.Pid)
	t.Logf("daemon VmRSS %d KB -> %d KB", rssBefore, rssAfter)
	if growth := rssAfter - rssBefore; growth > 256*1024 {
		t.Errorf("daemon RSS grew %d KB during soak, want bounded", growth)
	}

	// The ladder engaged and its transitions are visible in the overload
	// telemetry carried by the health document.
	h := daemonHealth(t, sock)
	if h.Transitions == 0 {
		t.Errorf("no ladder transitions recorded: %+v", h)
	}
	if h.Shed+h.Degraded == 0 {
		t.Errorf("health shows no shed/degraded decisions: %+v", h)
	}

	// Phase 3 — bounded recovery: with load gone, the daemon must return
	// to full service well within seconds (the configured bound is
	// 3×HealthyEvals×EvalInterval = 150ms plus scheduling slack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		h = daemonHealth(t, sock)
		if h.Ready() && h.Mode == "full" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never recovered to full service: %+v", h)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// No spurious demotion: the watchdog ticked through the brownout (it
	// is masked while overloaded, rebased on recovery) and the armed swap
	// is still serving.
	time.Sleep(200 * time.Millisecond) // a few post-recovery watchdog ticks
	cl, err = serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	status, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Serving string `json:"serving"`
	}
	if err := json.Unmarshal([]byte(status), &doc); err != nil {
		t.Fatalf("status %q: %v", status, err)
	}
	if doc.Serving != idB {
		t.Fatalf("overload demoted the incumbent: serving %s, want %s (status %s)", doc.Serving, idB, status)
	}
	state := make([]float64, gr.StateDim)
	if _, st, err := cl.Decide(9999, 100, state); err != nil || (st != serve.StatusOK && st != serve.StatusFallback) {
		t.Fatalf("post-recovery decide: status %d, err %v", st, err)
	}
}

// The same contract holds when the overload arrives through a faulty
// transport: drops, delays, and truncations on top of 3×+ load must still
// never crash the daemon, and it must still recover to full service.
func TestOverloadSoakChaos(t *testing.T) {
	bin := buildBinary(t)
	regDir, _, _ := soakRegistry(t)
	cmd, sock := startServe(t, bin, "-registry", regDir,
		"-max-batch", "8", "-deadline", "1ms", "-workers", "1",
		"-max-inflight", "16", "-overload-eval", "5ms", "-max-conns", "128")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	spec, err := chaos.ParseFaultSpec("seed=11,drop=0.03,trunc=0.02,delay=2ms,jitter=3ms")
	if err != nil {
		t.Fatal(err)
	}
	tr := chaos.NewTransport(spec)
	soak := chaos.RunLoad(chaos.LoadSpec{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("unix", sock)
			if err != nil {
				return nil, err
			}
			return tr.WrapConn(c), nil
		},
		Conns: 32, Duration: 3 * time.Second,
		StateDim: gr.StateDim, Seed: 3,
		Timeout: 300 * time.Millisecond, Redial: true,
	})
	t.Logf("chaos soak: %+v", soak)
	if soak.Answered() == 0 {
		t.Fatalf("nothing served through transport chaos: %+v", soak)
	}
	// Transport faults make client-side errors legitimate, but the books
	// must still balance: every call either answered or failed loudly.
	if soak.Sent != soak.Answered()+soak.Errors {
		t.Errorf("accounting: sent %d != answered %d + errors %d", soak.Sent, soak.Answered(), soak.Errors)
	}

	// The daemon survived and recovers to full service.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := daemonHealth(t, sock)
		if h.Ready() && h.Mode == "full" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never recovered after chaos soak: %+v", h)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The -health probe verb agrees: exit 0 and a JSON doc on stdout.
	out, err := execCommandOutput(bin, "-socket", sock, "-health")
	if err != nil {
		t.Fatalf("-health probe: %v (%s)", err, out)
	}
	var h serve.Health
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &h); err != nil {
		t.Fatalf("-health output %q: %v", out, err)
	}
	if !h.Ready() {
		t.Fatalf("-health exit 0 but doc not ready: %+v", h)
	}
}
