// Command sage-serve runs the batched policy-serving daemon: one process
// holding one policy, serving cwnd decisions for any number of flows over
// a Unix domain socket. Concurrent requests are coalesced into batched
// forward passes (internal/serve), so a fleet of thin per-flow clients
// shares the inference cost instead of each paying for its own network.
//
// Usage:
//
//	sage-serve -socket /run/sage.sock -model sage.model
//	sage-serve -socket /tmp/sage.sock -max-batch 512 -deadline 100us -pprof :6060
//
// Without -model a freshly initialized (untrained) policy is served —
// useful for protocol smoke tests and load benchmarks. SIGINT/SIGTERM
// drain gracefully: queued decisions complete, clients are hung up, and
// a final metrics snapshot is printed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/serve"
	"sage/internal/telemetry"
)

func main() {
	var (
		socket      = flag.String("socket", "/tmp/sage-serve.sock", "unix socket path to listen on")
		modelPath   = flag.String("model", "", "trained model file (empty = fresh untrained policy)")
		maxBatch    = flag.Int("max-batch", 256, "max flows per batched forward pass")
		deadline    = flag.Duration("deadline", 200*time.Microsecond, "micro-batch deadline")
		workers     = flag.Int("workers", 0, "forward-pass workers (0 = GOMAXPROCS)")
		maxSessions = flag.Int("max-sessions", 4096, "resident session cap (LRU eviction beyond)")
		stochastic  = flag.Bool("stochastic", false, "sample actions from the GMM instead of its mean")
		seed        = flag.Int64("seed", 1, "RNG seed for stochastic serving")
		pprofAddr   = flag.String("pprof", "", "serve pprof + /debug/vars on this addr")
	)
	flag.Parse()

	var (
		pol  *nn.Policy
		mask []int
	)
	if *modelPath != "" {
		model, err := core.LoadModel(*modelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pol, mask = model.Policy, model.Mask
	} else {
		cfg := nn.PolicyConfig{InDim: gr.StateDim}
		pol = nn.NewPolicy(cfg)
		fmt.Fprintln(os.Stderr, "sage-serve: no -model given, serving a fresh untrained policy")
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("sage-serve")
	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	eng := serve.NewEngine(serve.Config{
		Policy:        pol,
		Mask:          mask,
		Stochastic:    *stochastic,
		Seed:          *seed,
		MaxSessions:   *maxSessions,
		MaxBatch:      *maxBatch,
		BatchDeadline: *deadline,
		Workers:       *workers,
		Metrics:       reg,
	})
	srv := serve.NewServer(eng)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "sage-serve: %v, draining\n", sig)
		srv.Shutdown()
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "sage-serve: listening on %s\n", *socket)
	if err := srv.ListenAndServe(*socket); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
	os.Remove(*socket)
	fmt.Fprintf(os.Stderr, "sage-serve: final metrics\n%s", reg)
}
