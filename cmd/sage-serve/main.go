// Command sage-serve runs the batched policy-serving daemon: one process
// holding one policy, serving cwnd decisions for any number of flows over
// a Unix domain socket. Concurrent requests are coalesced into batched
// forward passes (internal/serve), so a fleet of thin per-flow clients
// shares the inference cost instead of each paying for its own network.
//
// Usage:
//
//	sage-serve -socket /run/sage.sock -model sage.model
//	sage-serve -socket /run/sage.sock -registry /var/lib/sage/registry
//	sage-serve -socket /tmp/sage.sock -max-batch 512 -deadline 100us -pprof :6060
//
// With -registry the daemon serves the registry's promoted incumbent and
// exposes the model lifecycle: SIGHUP (or the control socket's swap verb)
// hot-swaps to the current incumbent with zero dropped decisions, the
// status verb reports the lifecycle state, and a demotion watchdog
// monitors post-swap fallback ratios, reverting a degraded swap
// automatically. With -model a single file is served; SIGHUP re-reads it.
// Without either a freshly initialized (untrained) policy is served —
// useful for protocol smoke tests and load benchmarks. SIGINT/SIGTERM
// drain gracefully: queued decisions complete, clients are hung up, and
// a final metrics snapshot is printed.
//
// Overload protection is on by default: a global in-flight admission cap
// (-max-inflight, default 8× -max-batch) with explicit OVERLOAD replies,
// a brownout degradation ladder evaluated every -overload-eval, a
// per-decision -decision-budget, and a -max-conns accept cap (-overload=false
// disables the layer). `sage-serve -socket … -health` probes the daemon's
// health verb and exits 0 iff it is ready (full or shed-shadow service).
//
// Exit codes (the repo-wide daemon table):
//
//	0    clean exit
//	1    fatal runtime error
//	2    usage error
//	3    model integrity failure: the model file (or registry incumbent)
//	     is corrupt, truncated, or missing — restore it or re-promote;
//	     restarting cannot help, which is why this is not exit 1
//	130  signal-initiated graceful drain
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sage/internal/core"
	"sage/internal/feedback"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/promote"
	"sage/internal/safeio"
	"sage/internal/serve"
	"sage/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		socket      = flag.String("socket", "/tmp/sage-serve.sock", "unix socket path to listen on")
		modelPath   = flag.String("model", "", "trained model file (empty = fresh untrained policy)")
		registryDir = flag.String("registry", "", "model registry dir: serve the promoted incumbent and enable the lifecycle verbs")
		maxBatch    = flag.Int("max-batch", 256, "max flows per batched forward pass")
		deadline    = flag.Duration("deadline", 200*time.Microsecond, "micro-batch deadline")
		workers     = flag.Int("workers", 0, "forward-pass workers (0 = GOMAXPROCS)")
		maxSessions = flag.Int("max-sessions", 4096, "resident session cap (LRU eviction beyond)")
		stochastic  = flag.Bool("stochastic", false, "sample actions from the GMM instead of its mean")
		seed        = flag.Int64("seed", 1, "RNG seed for stochastic serving")
		reprime     = flag.Int("reprime-window", 8, "trace states replayed to re-prime recurrent sessions across a hot-swap")
		watchEvery  = flag.Duration("watchdog-interval", 2*time.Second, "demotion watchdog polling interval (registry mode)")
		eventsPath  = flag.String("events", "", "append lifecycle events (swap/demote) to this JSONL file")
		pprofAddr   = flag.String("pprof", "", "serve pprof + /debug/vars on this addr")

		overload    = flag.Bool("overload", true, "enable overload admission control and the brownout ladder")
		maxInflight = flag.Int("max-inflight", 0, "global in-flight decision cap (0 = 8x max-batch)")
		decBudget   = flag.Duration("decision-budget", 250*time.Millisecond, "per-decision latency budget; sustained misses escalate brownout")
		ovalEvery   = flag.Duration("overload-eval", 10*time.Millisecond, "brownout ladder evaluation window")
		maxConns    = flag.Int("max-conns", 1024, "connection cap; excess accepts get a typed OVERLOAD reply (0 = unlimited)")
		healthProbe = flag.Bool("health", false, "probe the daemon at -socket: print its health doc, exit 0 iff ready")

		traceSpool  = flag.String("trace-spool", "", "spool completed decision windows into this dir for the feedback loop (empty = off)")
		traceWindow = flag.Int("trace-window", 256, "decisions per exported trace window before rotation")
	)
	flag.Parse()
	if *healthProbe {
		return probeHealth(*socket)
	}
	if *modelPath != "" && *registryDir != "" {
		fmt.Fprintln(os.Stderr, "sage-serve: -model and -registry are mutually exclusive")
		return 2
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("sage-serve")
	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	var events *telemetry.JSONL
	if *eventsPath != "" {
		j, err := telemetry.CreateJSONL(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer j.Close()
		events = j
	}

	var (
		pol       *nn.Policy
		mask      []int
		registry  *promote.Registry
		servingID string
	)
	switch {
	case *registryDir != "":
		r, err := promote.OpenRegistry(*registryDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sage-serve:", err)
			return modelExitCode(err)
		}
		defer r.Close()
		model, info, err := r.LoadIncumbent()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sage-serve:", err)
			return modelExitCode(err)
		}
		registry, servingID = r, info.ID
		pol, mask = model.Policy, model.Mask
		fmt.Fprintf(os.Stderr, "sage-serve: serving registry incumbent %s\n", info.ID)
	case *modelPath != "":
		model, err := core.LoadModel(*modelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sage-serve:", err)
			return modelExitCode(err)
		}
		pol, mask = model.Policy, model.Mask
	default:
		pol = nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim})
		fmt.Fprintln(os.Stderr, "sage-serve: no -model given, serving a fresh untrained policy")
	}

	var ovCfg *serve.OverloadConfig
	if *overload {
		ovCfg = &serve.OverloadConfig{
			MaxInflight:    *maxInflight,
			DecisionBudget: *decBudget,
			EvalInterval:   *ovalEvery,
		}
	}
	var sink *feedback.SpoolSink
	if *traceSpool != "" {
		s, err := feedback.NewSpoolSink(feedback.SinkConfig{Dir: *traceSpool, Metrics: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sage-serve: trace spool:", err)
			return 1
		}
		sink = s
		fmt.Fprintf(os.Stderr, "sage-serve: spooling trace windows to %s\n", *traceSpool)
	}
	engCfg := serve.Config{
		Policy:           pol,
		Mask:             mask,
		Stochastic:       *stochastic,
		Seed:             *seed,
		MaxSessions:      *maxSessions,
		MaxBatch:         *maxBatch,
		BatchDeadline:    *deadline,
		Workers:          *workers,
		ReprimeWindow:    *reprime,
		Metrics:          reg,
		Overload:         ovCfg,
		TraceWindowSteps: *traceWindow,
	}
	if sink != nil {
		engCfg.Trace = sink
		// Runs at exit, after the server's shutdown drained the engine (which
		// flushes every open window into the sink): drain the queue to disk.
		defer sink.Close()
	}
	eng := serve.NewEngine(engCfg)
	srv := serve.NewServer(eng)
	srv.MaxConns = *maxConns

	// Lifecycle control: registry mode gets the full manager (watchdog,
	// demotion); file mode gets a reload-from-path handler so SIGHUP and
	// the swap verb still work without a registry.
	var ctl serve.Control
	var mgr *promote.Manager
	if registry != nil {
		m, err := promote.NewManager(promote.ManagerConfig{
			Registry: registry,
			Engine:   eng,
			Metrics:  reg,
			Events:   events,
		}, servingID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sage-serve:", err)
			return 1
		}
		mgr, ctl = m, m
	} else if *modelPath != "" {
		ctl = &fileControl{path: *modelPath, eng: eng}
	}
	if ctl != nil {
		srv.SetControl(ctl)
	}

	hupCh := make(chan os.Signal, 1)
	if ctl != nil {
		signal.Notify(hupCh, syscall.SIGHUP)
		go func() {
			for range hupCh {
				// Registry mode syncs to the incumbent: a HUP with an
				// unchanged incumbent is a no-op — it must not drain the
				// engine, re-prime sessions, or arm the demotion watchdog
				// the way an operator swap does. File mode has no registry
				// to compare against, so it always reloads the file.
				var report string
				var err error
				if mgr != nil {
					report, err = mgr.SyncIncumbent()
				} else {
					report, err = ctl.Swap("")
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "sage-serve: SIGHUP swap:", err)
					continue
				}
				fmt.Fprintln(os.Stderr, "sage-serve: SIGHUP:", report)
			}
		}()
	}

	done := make(chan struct{})
	if mgr != nil && *watchEvery > 0 {
		go func() {
			t := time.NewTicker(*watchEvery)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					if demoted, why := mgr.Tick(); demoted {
						fmt.Fprintln(os.Stderr, "sage-serve: watchdog demotion:", why)
					}
				}
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "sage-serve: %v, draining\n", sig)
		srv.Shutdown()
		close(drained)
	}()

	fmt.Fprintf(os.Stderr, "sage-serve: listening on %s\n", *socket)
	err := srv.ListenAndServe(*socket)
	close(done)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	<-drained
	os.Remove(*socket)
	fmt.Fprintf(os.Stderr, "sage-serve: final metrics\n%s", reg)
	return 130
}

// probeHealth is the -health client mode: one round trip to a running
// daemon's health verb. The health doc prints to stdout either way; the
// exit code makes it a readiness probe — 0 iff the daemon is reachable
// and its brownout ladder is at full service or the shed-shadow rung
// (still serving every admitted flow from the policy), 1 when it is
// browned out, draining, or unreachable.
func probeHealth(socket string) int {
	cl, err := serve.DialTimeout(socket, 2*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sage-serve: health:", err)
		return 1
	}
	defer cl.Close()
	cl.SetTimeout(2 * time.Second)
	doc, err := cl.Health()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sage-serve: health:", err)
		return 1
	}
	fmt.Println(doc)
	var h serve.Health
	if err := json.Unmarshal([]byte(doc), &h); err != nil {
		fmt.Fprintln(os.Stderr, "sage-serve: health:", err)
		return 1
	}
	if !h.Ready() {
		return 1
	}
	return 0
}

// modelExitCode classifies a model-loading failure per the exit-code
// table: integrity problems (corrupt, truncated, or missing checkpoint;
// a registry with nothing promoted) are exit 3 — operator intervention,
// not a restart, is what fixes them. Anything else is a fatal 1.
func modelExitCode(err error) int {
	switch {
	case errors.Is(err, safeio.ErrCorrupt),
		errors.Is(err, safeio.ErrTruncated),
		errors.Is(err, fs.ErrNotExist),
		errors.Is(err, promote.ErrNoIncumbent):
		return 3
	default:
		return 1
	}
}

// fileControl is the -model mode lifecycle handler: swap re-reads the
// model file (any non-empty arg is rejected — there is no registry to
// name models in), status reports the engine's session count.
type fileControl struct {
	path string
	eng  *serve.Engine
}

func (f *fileControl) Swap(id string) (string, error) {
	if id != "" {
		return "", errors.New("no registry: swap only reloads the -model file (pass an empty id)")
	}
	model, err := core.LoadModel(f.path)
	if err != nil {
		return "", err
	}
	stats, err := f.eng.Swap(model.Policy, model.Mask)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("reloaded %s (%s)", f.path, stats), nil
}

func (f *fileControl) Status() string {
	return fmt.Sprintf(`{"serving":%q,"sessions":%d}`, f.path, f.eng.Sessions())
}
