package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/promote"
	"sage/internal/safeio"
)

// modelExitCode implements the daemon exit-code table's row 3: every way a
// checkpoint can be unserviceable — corrupt, truncated, missing, or a
// registry with nothing promoted — maps to 3, and anything else stays a
// fatal 1. The classification must work through wrapped errors, since the
// loaders all annotate with %w.
func TestModelExitCode(t *testing.T) {
	dir := t.TempDir()

	// Missing file.
	_, err := core.LoadModel(filepath.Join(dir, "nope.model"))
	if err == nil {
		t.Fatal("loading a missing model succeeded")
	}
	if got := modelExitCode(err); got != 3 {
		t.Errorf("missing model -> exit %d, want 3", got)
	}

	// Corrupt file: flip a byte in a valid checkpoint.
	good := filepath.Join(dir, "good.model")
	m := &core.Model{
		Policy: nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 8, Hidden: 8, ResBlocks: 1, K: 2, Seed: 1}),
		Mask:   gr.MaskFull(),
		GR:     gr.Config{}.Fill(),
	}
	if err := m.Save(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	bad := filepath.Join(dir, "bad.model")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(bad); err == nil {
		t.Fatal("loading a corrupted model succeeded")
	} else if got := modelExitCode(err); got != 3 {
		t.Errorf("corrupt model -> exit %d, want 3 (err: %v)", got, err)
	}

	// Truncated file.
	trunc := filepath.Join(dir, "trunc.model")
	if err := os.WriteFile(trunc, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadModel(trunc); err == nil {
		t.Fatal("loading a truncated model succeeded")
	} else if got := modelExitCode(err); got != 3 {
		t.Errorf("truncated model -> exit %d, want 3 (err: %v)", got, err)
	}

	// A registry with nothing promoted.
	if got := modelExitCode(fmt.Errorf("boot: %w", promote.ErrNoIncumbent)); got != 3 {
		t.Errorf("no incumbent -> exit %d, want 3", got)
	}

	// Wrapped safeio sentinels classify without a real file.
	if got := modelExitCode(fmt.Errorf("x: %w", safeio.ErrCorrupt)); got != 3 {
		t.Errorf("wrapped ErrCorrupt -> exit %d, want 3", got)
	}
	if got := modelExitCode(fmt.Errorf("x: %w", safeio.ErrTruncated)); got != 3 {
		t.Errorf("wrapped ErrTruncated -> exit %d, want 3", got)
	}

	// Anything else is a plain fatal error.
	if got := modelExitCode(fmt.Errorf("dial unix: connection refused")); got != 1 {
		t.Errorf("unrelated error -> exit %d, want 1", got)
	}
}
