//go:build integration

// Lifecycle integration tests: run the real sage-serve binary against a
// real registry over a real Unix socket — exit codes for unserviceable
// models, hot-swap and status verbs, graceful drain, and journal recovery
// after SIGKILL mid-lifecycle. Build-tagged so tier-1 stays hermetic; CI
// runs these with -tags integration.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/promote"
	"sage/internal/serve"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sage-serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func testModel(t *testing.T, seed int64) *core.Model {
	t.Helper()
	return &core.Model{
		Policy: nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 8, Hidden: 8, ResBlocks: 1, K: 2, Seed: seed}),
		Mask:   gr.MaskFull(),
		GR:     gr.Config{}.Fill(),
	}
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// Exit code 3 for every flavor of unserviceable model; exit 2 for usage
// errors — the documented table, enforced end to end.
func TestExitCodes(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	sock := filepath.Join(dir, "s.sock")

	// Missing model file.
	err := exec.Command(bin, "-socket", sock, "-model", filepath.Join(dir, "nope.model")).Run()
	if got := exitCode(err); got != 3 {
		t.Errorf("missing model: exit %d, want 3", got)
	}

	// Corrupt model file.
	good := filepath.Join(dir, "good.model")
	if err := testModel(t, 1).Save(good); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(good)
	raw[len(raw)-2] ^= 0xff
	corrupt := filepath.Join(dir, "corrupt.model")
	os.WriteFile(corrupt, raw, 0o644)
	err = exec.Command(bin, "-socket", sock, "-model", corrupt).Run()
	if got := exitCode(err); got != 3 {
		t.Errorf("corrupt model: exit %d, want 3", got)
	}

	// Registry with nothing promoted.
	regDir := filepath.Join(dir, "registry")
	r, err := promote.OpenRegistry(regDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(testModel(t, 2), promote.Meta{Provenance: "t"}); err != nil {
		t.Fatal(err)
	}
	r.Close() // published but never promoted: a daemon must refuse to serve it
	err = exec.Command(bin, "-socket", sock, "-registry", regDir).Run()
	if got := exitCode(err); got != 3 {
		t.Errorf("registry without incumbent: exit %d, want 3", got)
	}

	// -model and -registry together is a usage error.
	err = exec.Command(bin, "-socket", sock, "-model", good, "-registry", regDir).Run()
	if got := exitCode(err); got != 2 {
		t.Errorf("conflicting flags: exit %d, want 2", got)
	}
}

func startServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "serve.sock")
	cmd := exec.Command(bin, append([]string{"-socket", sock}, args...)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := os.Stat(sock); err == nil {
			return cmd, sock
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("daemon never created its socket")
	return nil, ""
}

// Registry serving end to end: boot on the incumbent, promote a new
// candidate, hot-swap via the control socket while decisions flow, read
// status, drain on SIGTERM with exit 130.
func TestRegistryServeSwapStatus(t *testing.T) {
	bin := buildBinary(t)
	regDir := filepath.Join(t.TempDir(), "registry")
	r, err := promote.OpenRegistry(regDir)
	if err != nil {
		t.Fatal(err)
	}
	idA, err := r.Publish(testModel(t, 1), promote.Meta{Provenance: "boot"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(idA, "bootstrap"); err != nil {
		t.Fatal(err)
	}

	cmd, sock := startServe(t, bin, "-registry", regDir)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	cl, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	state := make([]float64, gr.StateDim)
	if _, _, err := cl.Decide(1, 100, state); err != nil {
		t.Fatalf("decide against incumbent: %v", err)
	}

	status, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Serving   string `json:"serving"`
		Incumbent string `json:"incumbent"`
	}
	if err := json.Unmarshal([]byte(status), &doc); err != nil {
		t.Fatalf("status %q: %v", status, err)
	}
	if doc.Serving != idA || doc.Incumbent != idA {
		t.Fatalf("status = %s, want serving=incumbent=%s", status, idA)
	}

	// Promote a new candidate out-of-process (the registry journal is the
	// coordination point), then swap the live daemon onto it.
	idB, err := r.Publish(testModel(t, 2), promote.Meta{Provenance: "trainer"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(idB, "gate verdict"); err != nil {
		t.Fatal(err)
	}
	r.Close()

	report, err := cl.Swap("")
	if err != nil {
		t.Fatalf("swap verb: %v", err)
	}
	if !strings.Contains(report, idB) {
		t.Fatalf("swap report %q does not name %s", report, idB)
	}
	if _, _, err := cl.Decide(2, 100, state); err != nil {
		t.Fatalf("decide after swap: %v", err)
	}
	status, err = cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, fmt.Sprintf("%q", idB)) {
		t.Fatalf("post-swap status %q does not serve %s", status, idB)
	}

	// Swapping to an unknown id is an error the daemon survives.
	if _, err := cl.Swap("no-such-model"); err == nil {
		t.Fatal("swap to unknown model succeeded")
	}
	if _, _, err := cl.Decide(3, 100, state); err != nil {
		t.Fatalf("daemon dead after failed swap: %v", err)
	}

	// Graceful drain: SIGTERM → exit 130, socket removed.
	cmd.Process.Signal(syscall.SIGTERM)
	err = cmd.Wait()
	if got := exitCode(err); got != 130 {
		t.Fatalf("SIGTERM drain: exit %d, want 130", got)
	}
}

// SIGKILL the daemon at every lifecycle stage; a restarted daemon must
// boot from the journal and serve the last *promoted* model, never a
// candidate and never the demoted one.
func TestJournalSurvivesKillAtEachStage(t *testing.T) {
	bin := buildBinary(t)
	regDir := filepath.Join(t.TempDir(), "registry")

	r, err := promote.OpenRegistry(regDir)
	if err != nil {
		t.Fatal(err)
	}
	idA, _ := r.Publish(testModel(t, 1), promote.Meta{Provenance: "boot"})
	if err := r.Promote(idA, "bootstrap"); err != nil {
		t.Fatal(err)
	}

	stage := func(name, wantIncumbent string) {
		t.Helper()
		cmd, sock := startServe(t, bin, "-registry", regDir)
		cl, err := serve.Dial(sock)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		state := make([]float64, gr.StateDim)
		if _, _, err := cl.Decide(1, 100, state); err != nil {
			t.Fatalf("%s: decide: %v", name, err)
		}
		status, err := cl.Status()
		if err != nil {
			t.Fatalf("%s: status: %v", name, err)
		}
		if !strings.Contains(status, fmt.Sprintf("%q", wantIncumbent)) {
			t.Fatalf("%s: rebooted daemon serves %s, want %s", name, status, wantIncumbent)
		}
		cl.Close()
		cmd.Process.Signal(syscall.SIGKILL) // no drain, no goodbye
		cmd.Wait()
		os.Remove(sock)
	}

	// Stage 1: killed while serving the bootstrap incumbent.
	stage("bootstrap", idA)

	// Stage 2: a candidate is published (not promoted) before the kill —
	// the reboot must still serve idA.
	if _, err := r.Publish(testModel(t, 2), promote.Meta{ID: "cand-unpromoted", Provenance: "trainer"}); err != nil {
		t.Fatal(err)
	}
	stage("published-candidate", idA)

	// Stage 3: promotion lands, then the kill.
	idB, err := r.Publish(testModel(t, 3), promote.Meta{Provenance: "trainer2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(idB, "gate"); err != nil {
		t.Fatal(err)
	}
	stage("promoted", idB)

	// Stage 4: demotion lands, then the kill — back to idA.
	if _, err := r.Demote("watchdog"); err != nil {
		t.Fatal(err)
	}
	stage("demoted", idA)
	r.Close()
}
