// Command sage-eval deploys a trained model (phase 3 of Fig. 3): it runs the
// model — and optionally the heuristic league — over Set I / Set II
// scenarios and reports scores and winning rates.
//
// Usage:
//
//	sage-eval -model sage.model                 # league vs the 13 heuristics
//	sage-eval -model sage.model -scenario flat-24mbps-20ms-1bdp
//	sage-eval -model sage.model -scenario flat-24mbps-20ms-1bdp -trace flow.jsonl
//	sage-eval -model sage.model -metrics league.jsonl -pprof :6060
//	sage-eval -model sage.model -experiment robustness
//
// With -experiment robustness, the model runs bare, wrapped in the
// runtime guardian (internal/guard), and against Cubic across the
// adversarial scenario grid (link flaps, blackouts, reordering, ACK
// loss/duplication, Gilbert-Elliott burst loss); the report covers
// completion rate, stall time, and guardian trip/restore counts, and
// -metrics captures per-run records plus every trip/restore event as
// JSONL.
//
// With -trace (single-scenario mode), every GR tick of the flow under test
// is exported — cwnd, srtt, inflight, delivery rate, losses, queue
// occupancy — as JSONL (or CSV when the path ends in .csv): the raw series
// behind the paper's Figs. 17–19/24/25. With -metrics (league mode), one
// JSON line per scheme records its Set I / Set II winning rates.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sage/internal/cc"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/exp"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/safeio"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

func main() {
	var (
		modelPath  = flag.String("model", "sage.model", "trained model file")
		level      = flag.String("level", "tiny", "grid density: tiny|small|full")
		setIDur    = flag.Duration("seti-dur", 10*time.Second, "Set I duration")
		setIIDur   = flag.Duration("setii-dur", 30*time.Second, "Set II duration")
		scenario   = flag.String("scenario", "", "run a single named scenario instead of the league")
		margin     = flag.Float64("margin", 0.10, "winner margin")
		alpha      = flag.Float64("alpha", 2, "power-score exponent")
		parallel   = flag.Int("parallel", 0, "workers (0 = NumCPU)")
		seed       = flag.Int64("seed", 1, "seed")
		tracePath  = flag.String("trace", "", "single-scenario mode: write the per-tick flow trace to this file (.csv for CSV, else JSONL)")
		traceStep  = flag.Duration("trace-period", 0, "decimate the flow trace to one sample per period (0 = every GR tick)")
		metrics    = flag.String("metrics", "", "league mode: write per-scheme winning rates as JSONL to this file")
		pprofAddr  = flag.String("pprof", "", "serve pprof+expvar on this address (e.g. :6060)")
		experiment = flag.String("experiment", "", "run a named deployment experiment with the loaded model (supported: robustness)")
	)
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *tracePath != "" && *scenario == "" {
		fmt.Fprintln(os.Stderr, "-trace requires -scenario (per-flow traces are a single-rollout export)")
		os.Exit(2)
	}

	model, err := core.LoadModel(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lvl := map[string]netem.GridLevel{"tiny": netem.GridTiny, "small": netem.GridSmall, "full": netem.GridFull}[*level]

	if *experiment != "" {
		if *experiment != "robustness" {
			fmt.Fprintf(os.Stderr, "unknown -experiment %q (supported: robustness; the figure/table experiments live in sage-bench)\n", *experiment)
			os.Exit(2)
		}
		var emit *telemetry.JSONL
		if *metrics != "" {
			emit, err = telemetry.CreateJSONL(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		for _, t := range exp.RobustnessWithModel(model, lvl, sim.FromSeconds(setIDur.Seconds()), *seed, emit) {
			t.Fprint(os.Stdout)
		}
		if err := emit.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	setI := netem.SetI(netem.SetIOptions{Level: lvl, Duration: sim.FromSeconds(setIDur.Seconds()), Seed: *seed})
	setII := netem.SetII(netem.SetIIOptions{Level: lvl, Duration: sim.FromSeconds(setIIDur.Seconds()), Seed: *seed})
	// Reject nonsense before any rollout runs: flag-derived durations can
	// produce scenarios that would otherwise silently misbehave.
	if err := netem.ValidateAll(append(append([]netem.Scenario(nil), setI...), setII...)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sage := eval.ControllerEntrant("sage", func() rollout.Controller { return model.NewAgent(*seed) })

	if *scenario != "" {
		for _, sc := range append(setI, setII...) {
			if sc.Name != *scenario {
				continue
			}
			var trace *telemetry.FlowTrace
			if *tracePath != "" {
				trace = telemetry.NewFlowTrace(sim.FromSeconds(traceStep.Seconds()))
			}
			res := sage.Run(sc, rollout.Options{Trace: trace, Ctx: ctx})
			if res.Interrupted {
				fmt.Fprintln(os.Stderr, "interrupted; partial rollout discarded")
				os.Exit(130)
			}
			fmt.Printf("%s: thr %.2f Mb/s, avg RTT %.1f ms, loss %.3f%%, fair share %.2f Mb/s\n",
				sc.Name, res.ThroughputBps/1e6, res.AvgRTT.Millis(), res.LossRate*100, res.FairShareBps/1e6)
			if trace != nil {
				if err := writeTrace(trace, *tracePath); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s (%d samples)\n", *tracePath, trace.Len())
			}
			return
		}
		fmt.Fprintf(os.Stderr, "scenario %q not found\n", *scenario)
		os.Exit(2)
	}

	entrants := []eval.Entrant{sage}
	for _, n := range cc.PoolNames() {
		entrants = append(entrants, eval.SchemeEntrant(n))
	}
	res := eval.RunLeague(entrants, setI, setII, eval.LeagueOptions{
		Margin: *margin, Alpha: *alpha, Parallel: *parallel, Ctx: ctx,
	})
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted; league incomplete, no rates reported")
		os.Exit(130)
	}
	fmt.Printf("%-12s %12s %12s\n", "scheme", "setI", "setII")
	var emit *telemetry.JSONL
	if *metrics != "" {
		emit, err = telemetry.CreateJSONL(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, n := range res.RankingSingle() {
		fmt.Printf("%-12s %11.1f%% %11.1f%%\n", n, res.RateSingle[n]*100, res.RateMulti[n]*100)
		emit.Emit(struct {
			Scheme   string  `json:"scheme"`
			RateSetI float64 `json:"rate_set1"`
			RateSet2 float64 `json:"rate_set2"`
		}{n, res.RateSingle[n], res.RateMulti[n]})
	}
	if err := emit.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeTrace exports the flow trace through safeio's raw atomic writer:
// the file appears atomically (a crash mid-export cannot leave a
// half-written series) yet stays plain JSONL/CSV for external tools.
func writeTrace(tr *telemetry.FlowTrace, path string) error {
	return safeio.WriteFileRaw(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".csv") {
			return tr.WriteCSV(w)
		}
		return tr.WriteJSONL(w)
	})
}
