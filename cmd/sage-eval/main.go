// Command sage-eval deploys a trained model (phase 3 of Fig. 3): it runs the
// model — and optionally the heuristic league — over Set I / Set II
// scenarios and reports scores and winning rates.
//
// Usage:
//
//	sage-eval -model sage.model                 # league vs the 13 heuristics
//	sage-eval -model sage.model -scenario flat-24mbps-20ms-1bdp
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sage/internal/cc"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
)

func main() {
	var (
		modelPath = flag.String("model", "sage.model", "trained model file")
		level     = flag.String("level", "tiny", "grid density: tiny|small|full")
		setIDur   = flag.Duration("seti-dur", 10*time.Second, "Set I duration")
		setIIDur  = flag.Duration("setii-dur", 30*time.Second, "Set II duration")
		scenario  = flag.String("scenario", "", "run a single named scenario instead of the league")
		margin    = flag.Float64("margin", 0.10, "winner margin")
		alpha     = flag.Float64("alpha", 2, "power-score exponent")
		parallel  = flag.Int("parallel", 0, "workers (0 = NumCPU)")
		seed      = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	model, err := core.LoadModel(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lvl := map[string]netem.GridLevel{"tiny": netem.GridTiny, "small": netem.GridSmall, "full": netem.GridFull}[*level]
	setI := netem.SetI(netem.SetIOptions{Level: lvl, Duration: sim.FromSeconds(setIDur.Seconds()), Seed: *seed})
	setII := netem.SetII(netem.SetIIOptions{Level: lvl, Duration: sim.FromSeconds(setIIDur.Seconds()), Seed: *seed})

	sage := eval.ControllerEntrant("sage", func() rollout.Controller { return model.NewAgent(*seed) })

	if *scenario != "" {
		for _, sc := range append(setI, setII...) {
			if sc.Name != *scenario {
				continue
			}
			res := sage.Run(sc, rollout.Options{})
			fmt.Printf("%s: thr %.2f Mb/s, avg RTT %.1f ms, loss %.3f%%, fair share %.2f Mb/s\n",
				sc.Name, res.ThroughputBps/1e6, res.AvgRTT.Millis(), res.LossRate*100, res.FairShareBps/1e6)
			return
		}
		fmt.Fprintf(os.Stderr, "scenario %q not found\n", *scenario)
		os.Exit(2)
	}

	entrants := []eval.Entrant{sage}
	for _, n := range cc.PoolNames() {
		entrants = append(entrants, eval.SchemeEntrant(n))
	}
	res := eval.RunLeague(entrants, setI, setII, eval.LeagueOptions{
		Margin: *margin, Alpha: *alpha, Parallel: *parallel,
	})
	fmt.Printf("%-12s %12s %12s\n", "scheme", "setI", "setII")
	for _, n := range res.RankingSingle() {
		fmt.Printf("%-12s %11.1f%% %11.1f%%\n", n, res.RateSingle[n]*100, res.RateMulti[n]*100)
	}
}
