//go:build integration

// Poisoned-pool recovery integration test: train the real sage-train
// binary on a 10%-poisoned pool and require the sentinel-guarded run to
// produce a finite-weight policy close to the clean-pool baseline, while
// the unguarded run demonstrably diverges. Build-tagged so the tier-1
// suite stays hermetic; CI runs it with -tags integration.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"sage/internal/chaos"
	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/nn"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sage-train")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// synthTraj builds one bandit-style trajectory: the "good" scheme always
// doubles toward u=+0.5 and earns reward 1, the "bad" scheme backs off
// toward u=−0.5 and earns 0. States vary step to step (so the quality
// gate's frozen-flow check stays quiet on clean data).
func synthTraj(scheme string, env int, ratio, reward float64) collector.Trajectory {
	tr := collector.Trajectory{Scheme: scheme, Env: fmt.Sprintf("e%02d", env)}
	for j := 0; j < 80; j++ {
		st := make([]float64, gr.StateDim)
		for k := range st {
			st[k] = math.Sin(float64(j*(k+1)+env)) * 0.5
		}
		tr.Steps = append(tr.Steps, gr.Step{State: st, Action: ratio, Reward: reward})
	}
	return tr
}

func synthPool() *collector.Pool {
	p := &collector.Pool{}
	for i := 0; i < 10; i++ {
		p.Trajs = append(p.Trajs, synthTraj("good", i, math.Exp2(0.5), 1))
		p.Trajs = append(p.Trajs, synthTraj("bad", i, math.Exp2(-0.5), 0))
	}
	return p
}

func probeMean(t *testing.T, modelPath string) float64 {
	t.Helper()
	m, err := core.LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !nn.FiniteParams(m.Policy) {
		t.Fatalf("%s has non-finite weights", modelPath)
	}
	raw := make([]float64, gr.StateDim)
	for k := range raw {
		raw[k] = math.Sin(float64(40*(k+1))) * 0.5
	}
	head, _, _ := m.Policy.Forward(gr.ApplyMask(raw, m.Mask), m.Policy.InitHidden())
	return m.Policy.GMM.Mean(head)
}

func trainArgs(pool, model string, extra ...string) []string {
	args := []string{
		"-pool", pool, "-out", model,
		"-steps", "400", "-enc", "8", "-gru", "4", "-seed", "3",
		"-log-every", "100000", // keep CI logs quiet
	}
	return append(args, extra...)
}

func TestPoisonedPoolRecovery(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()

	cleanPool := filepath.Join(dir, "clean.gob.gz")
	if err := synthPool().Save(cleanPool); err != nil {
		t.Fatal(err)
	}
	poisoned := synthPool()
	ledger := chaos.PoisonPool(poisoned, 0.1, 7)
	if len(ledger) != 2 {
		t.Fatalf("poisoned %d trajectories, want 2 (10%% of 20)", len(ledger))
	}
	poisonPool := filepath.Join(dir, "poisoned.gob.gz")
	if err := poisoned.Save(poisonPool); err != nil {
		t.Fatal(err)
	}

	// Baseline: clean pool under the (default-on) sentinel.
	cleanModel := filepath.Join(dir, "clean.model")
	if out, err := exec.Command(bin, trainArgs(cleanPool, cleanModel)...).CombinedOutput(); err != nil {
		t.Fatalf("clean run: %v\n%s", err, out)
	}
	cleanMean := probeMean(t, cleanModel)

	// Unguarded: the same poisoned pool with the sentinel disabled must
	// visibly diverge — NaN weights in the saved model or a failed run.
	unguardedModel := filepath.Join(dir, "unguarded.model")
	out, err := exec.Command(bin, trainArgs(poisonPool, unguardedModel, "-sentinel=false")...).CombinedOutput()
	if err == nil {
		m, lerr := core.LoadModel(unguardedModel)
		if lerr != nil {
			t.Fatalf("unguarded run exited 0 but model unreadable: %v", lerr)
		}
		if nn.FiniteParams(m.Policy) {
			t.Fatalf("unguarded run survived the poisoned pool with finite weights\n%s", out)
		}
	}

	// Guarded: sentinel on, no sanitize — the NaN batches must be skipped
	// at the gate and the surviving policy must land near the baseline.
	guardedModel := filepath.Join(dir, "guarded.model")
	metrics := filepath.Join(dir, "guarded.jsonl")
	out, err = exec.Command(bin, trainArgs(poisonPool, guardedModel, "-metrics", metrics)...).CombinedOutput()
	if err != nil {
		t.Fatalf("guarded run: %v\n%s", err, out)
	}
	guardedMean := probeMean(t, guardedModel)
	if diff := math.Abs(guardedMean - cleanMean); diff > 0.5 {
		t.Fatalf("guarded policy drifted from clean baseline: clean %.3f, guarded %.3f", cleanMean, guardedMean)
	}

	// The metrics JSONL must carry sentinel events (skip lines with a
	// reason) alongside the per-step records.
	f, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	skipEvents, skippedSteps := 0, 0
	scan := bufio.NewScanner(f)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		var m map[string]any
		if err := json.Unmarshal(scan.Bytes(), &m); err != nil {
			t.Fatalf("metrics line not JSON: %v", err)
		}
		if m["event"] == "skip" && m["reason"] != nil {
			skipEvents++
		}
		if m["skipped"] == true {
			skippedSteps++
		}
	}
	if skipEvents == 0 {
		t.Fatal("no sentinel skip events in metrics JSONL")
	}
	if skippedSteps == 0 {
		t.Fatal("no per-step records flagged skipped")
	}

	// Sanitize: quarantining the poison up front must let even the
	// unguarded trainer finish with finite weights, and the sidecar must
	// name the injected trajectories.
	sanitizedModel := filepath.Join(dir, "sanitized.model")
	out, err = exec.Command(bin, trainArgs(poisonPool, sanitizedModel, "-sanitize", "-sentinel=false")...).CombinedOutput()
	if err != nil {
		t.Fatalf("sanitized run: %v\n%s", err, out)
	}
	if mean := probeMean(t, sanitizedModel); math.Abs(mean-cleanMean) > 0.5 {
		t.Fatalf("sanitized policy drifted from clean baseline: clean %.3f, sanitized %.3f", cleanMean, mean)
	}
	if _, err := os.Stat(poisonPool + ".quarantine.jsonl"); err != nil {
		t.Fatalf("no quarantine sidecar: %v", err)
	}
}
