// Command sage-train runs the Core Learning block: offline CRR training on
// a collected pool (phase 2 of Fig. 3). No network environment is touched.
//
// Usage:
//
//	sage-train -pool pool.gob.gz -out sage.model -steps 20000 -enc 128 -gru 128
//	sage-train -pool pool.gob.gz -metrics train.jsonl -progress -pprof :6060
//
// With -metrics, every gradient step emits one JSON line (step, losses,
// filter acceptance, advantage stats, gradient norms, steps/sec); with
// -progress, a throttled progress/ETA line is printed; with -pprof, the
// Go profiling endpoints and /debug/vars are served for the run.
//
// With -worker, the process is one data-parallel training worker
// instead: it connects to a sage-coord coordinator (mode train), builds
// its dataset from -pool with the coordinator's announced mask and
// config, and loops compute-shard → submit → install-broadcast until the
// run completes. Exit status (shared with sage-collect -agent): 0 run
// complete, 4 lease lost / fenced off (the coordinator replaced this
// session — relaunch for a fresh one), 130 signal drain, 2 usage error,
// 1 fatal error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/dist"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/promote"
	"sage/internal/rl"
	"sage/internal/sentinel"
	"sage/internal/telemetry"
)

// stepRecord is the JSONL schema of -metrics (documented in README's
// Observability section).
type stepRecord struct {
	Step           int     `json:"step"`
	CriticLoss     float64 `json:"critic_loss"`
	PolicyLoss     float64 `json:"policy_loss"`
	MeanFilter     float64 `json:"mean_filter"`
	FilterAccept   float64 `json:"filter_accept"`
	AdvMean        float64 `json:"adv_mean"`
	AdvStd         float64 `json:"adv_std"`
	GradNormPi     float64 `json:"grad_norm_pi"`
	GradNormQ      float64 `json:"grad_norm_q"`
	GradNormPiClip float64 `json:"grad_norm_pi_clip,omitempty"` // post-clip (0 when skipped)
	GradNormQClip  float64 `json:"grad_norm_q_clip,omitempty"`
	LRPolicy       float64 `json:"lr_policy,omitempty"` // in effect this step (sentinel backoff visible here)
	LRCritic       float64 `json:"lr_critic,omitempty"`
	Skipped        bool    `json:"skipped,omitempty"` // sentinel rejected the batch pre-optimizer
	Workers        int     `json:"workers"`
	WorkerUtil     float64 `json:"worker_util,omitempty"` // mean busy / slowest busy
	StepsPerSec    float64 `json:"steps_per_sec"`
	ElapsedSec     float64 `json:"elapsed_s"`
}

func main() {
	var (
		poolPath  = flag.String("pool", "pool.gob.gz", "input pool file")
		out       = flag.String("out", "sage.model", "output model file")
		steps     = flag.Int("steps", 2000, "CRR gradient steps")
		enc       = flag.Int("enc", 32, "encoder width")
		gru       = flag.Int("gru", 16, "GRU width")
		kMix      = flag.Int("gmm", 3, "GMM components")
		atoms     = flag.Int("atoms", 21, "critic atoms")
		mask      = flag.String("mask", "full", "input mask: full|no-minmax|no-rttvar|no-lossinf")
		workers   = flag.Int("workers", 1, "data-parallel training workers")
		seed      = flag.Int64("seed", 1, "seed")
		logEvery  = flag.Int("log-every", 100, "progress period in steps")
		ckpt      = flag.String("checkpoint", "", "checkpoint file (written every checkpoint-every steps; resumed from if present)")
		ckptEvery = flag.Int("checkpoint-every", 1000, "checkpoint period in steps")
		ckptKeep  = flag.Int("checkpoint-keep", 3, "previous checkpoint generations kept for corruption fallback")
		metrics   = flag.String("metrics", "", "write per-step training metrics as JSONL to this file")
		progress  = flag.Bool("progress", false, "print a live progress/ETA line")
		pprofAddr = flag.String("pprof", "", "serve pprof+expvar on this address (e.g. :6060)")
		sanitize  = flag.Bool("sanitize", false, "quarantine bad trajectories (non-finite/out-of-range/frozen/truncated) before training; report goes to <pool>.quarantine.jsonl")
		useSent   = flag.Bool("sentinel", true, "train under the divergence sentinel (batch gating, checkpoint rollback, LR backoff)")
		publish   = flag.String("publish", "", "also publish the trained model as a candidate in this model registry dir (see sage-serve -registry)")
		worker    = flag.String("worker", "", "run as a distributed training worker against the sage-coord coordinator at this address (host:port or unix:/path)")
		workerIdx = flag.Int("worker-index", 0, "with -worker: this worker's slot [0, train-workers)")
		redials   = flag.Int("redial-attempts", 0, "with -worker: consecutive failed dials tolerated before giving up (0 = default 10); raise to ride out coordinator restarts")
	)
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *worker != "" {
		os.Exit(runWorker(ctx, *worker, *workerIdx, *poolPath, *logEvery, *redials))
	}

	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	reg := telemetry.NewRegistry()
	reg.PublishExpvar("sage-train")

	var emit *telemetry.JSONL
	if *metrics != "" {
		var err error
		emit, err = telemetry.CreateJSONL(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer emit.Close()
	}

	pool, err := collector.Load(*poolPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("pool: %d trajectories, %d transitions\n", len(pool.Trajs), pool.Transitions())
	if *sanitize {
		clean, rep := collector.Sanitize(pool, collector.QualityConfig{})
		if rep.Quarantined > 0 {
			sidecar := *poolPath + ".quarantine.jsonl"
			if err := rep.WriteSidecar(sidecar); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("sanitize: quarantined %d/%d trajectories (report: %s)\n",
				rep.Quarantined, rep.Total, sidecar)
		} else {
			fmt.Println("sanitize: pool is clean")
		}
		pool = clean
	}

	var m []int
	switch *mask {
	case "full":
		m = nil
	case "no-minmax":
		m = gr.MaskNoMinMax()
	case "no-rttvar":
		m = gr.MaskNoRTTVar()
	case "no-lossinf":
		m = gr.MaskNoLossInflight()
	default:
		fmt.Fprintf(os.Stderr, "unknown mask %q\n", *mask)
		os.Exit(2)
	}

	cfg := core.Config{
		GR:   pool.GR,
		Mask: m,
		CRR: rl.CRRConfig{
			Policy:  nn.PolicyConfig{Enc: *enc, Hidden: *gru, ResBlocks: 2, K: *kMix},
			Critic:  nn.CriticConfig{Hidden: 2 * *enc, Atoms: *atoms},
			Steps:   *steps,
			Workers: *workers,
			Seed:    *seed,
		},
	}
	start := time.Now()
	ds := rl.BuildDataset(pool, m)
	if ds.Transitions() == 0 {
		fmt.Fprintln(os.Stderr, "no usable transitions in the pool (all trajectories empty, truncated, or quarantined)")
		os.Exit(1)
	}
	var learner *rl.CRR
	done := 0
	if *ckpt != "" {
		resumed, steps, from, err := rl.LoadCheckpointAuto(*ckpt, ds)
		switch {
		case err == nil:
			learner = resumed
			done = steps
			if from != *ckpt {
				fmt.Printf("checkpoint %s unreadable; fell back to %s\n", *ckpt, from)
			}
			fmt.Printf("resumed %s at step %d\n", from, steps)
		case rl.IsNotExist(err):
			// No checkpoint yet: fresh start.
		default:
			// Checkpoints exist but none loads: refuse to silently retrain
			// from scratch over hours of prior work.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if learner == nil {
		crr := cfg.CRR
		learner = rl.NewCRR(ds, crr)
	}
	remaining := *steps - done
	if remaining < 0 {
		remaining = 0
	}
	learner.Cfg.Steps = remaining

	var meter *telemetry.Progress
	if *progress {
		meter = telemetry.NewProgress(os.Stdout, "train", int64(remaining), time.Second)
	}
	stepCtr := reg.Counter("steps")
	criticG := reg.Gauge("critic_loss")
	policyG := reg.Gauge("policy_loss")
	stepHist := reg.Histogram("step_seconds")
	lastStep := start
	learner.OnStep = func(s rl.TrainStats) {
		now := time.Now()
		stepHist.Observe(now.Sub(lastStep).Seconds())
		lastStep = now
		stepCtr.Inc()
		criticG.Set(s.CriticLoss)
		policyG.Set(s.PolicyLoss)
		meter.Add(1)
		if emit == nil {
			return
		}
		elapsed := now.Sub(start).Seconds()
		// s.Step is already absolute (stepIdx survives checkpoint resume),
		// unlike the Train progress callback's run-local step.
		rec := stepRecord{
			Step:           s.Step,
			CriticLoss:     s.CriticLoss,
			PolicyLoss:     s.PolicyLoss,
			MeanFilter:     s.MeanFilter,
			FilterAccept:   s.FilterAccept,
			AdvMean:        s.AdvMean,
			AdvStd:         s.AdvStd,
			GradNormPi:     s.GradNormPi,
			GradNormQ:      s.GradNormQ,
			GradNormPiClip: s.GradNormPiClip,
			GradNormQClip:  s.GradNormQClip,
			LRPolicy:       s.LRPolicy,
			LRCritic:       s.LRCritic,
			Skipped:        s.Skipped,
			Workers:        s.Workers,
			StepsPerSec:    float64(s.Step-done) / elapsed,
			ElapsedSec:     elapsed,
		}
		if len(s.WorkerBusy) > 0 {
			sum, slowest := 0.0, 0.0
			for _, b := range s.WorkerBusy {
				sum += b
				if b > slowest {
					slowest = b
				}
			}
			if slowest > 0 {
				rec.WorkerUtil = sum / (float64(len(s.WorkerBusy)) * slowest)
			}
		}
		// A gated batch can carry NaN losses/norms; JSON cannot. The
		// skipped flag plus zeroed floats keeps the line parseable.
		for _, f := range []*float64{
			&rec.CriticLoss, &rec.PolicyLoss, &rec.MeanFilter, &rec.FilterAccept,
			&rec.AdvMean, &rec.AdvStd, &rec.GradNormPi, &rec.GradNormQ,
		} {
			if math.IsNaN(*f) || math.IsInf(*f, 0) {
				*f = 0
			}
		}
		if err := emit.Emit(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	logProgress := func(step int, cl, pl float64) {
		abs := done + step
		if abs%*logEvery == 0 && !*progress {
			fmt.Printf("step %6d  critic %.4f  policy %.4f  (%s)\n",
				abs, cl, pl, time.Since(start).Round(time.Second))
		}
	}
	if *useSent {
		// The sentinel owns checkpointing: its rotations double as the
		// resume points of PR 2 (same path, same format) and as rollback
		// anchors, so the plain-save in the progress callback is disabled.
		ckptPath := *ckpt
		if ckptPath == "" {
			ckptPath = *out + ".sentinel-ckpt"
		}
		sn := sentinel.New(sentinel.Config{
			CheckpointPath:  ckptPath,
			CheckpointEvery: *ckptEvery,
			CheckpointKeep:  *ckptKeep,
			Metrics:         reg,
		})
		trained, serr := sn.Run(ctx, learner, ds, logProgress)
		learner = trained
		if emit != nil {
			if err := sn.EmitEvents(emit); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if sn.Trips() > 0 {
			fmt.Printf("sentinel: %d trips (%d batch skips, %d rollbacks), final lr scale %g\n",
				sn.Trips(), sn.Skips(), sn.Rollbacks(), sn.LRScale())
		}
		if serr != nil {
			meter.Finish()
			if emit != nil {
				emit.Flush()
			}
			fmt.Fprintln(os.Stderr, serr)
			os.Exit(1)
		}
	} else {
		learner.Train(ctx, ds, func(step int, cl, pl float64) {
			logProgress(step, cl, pl)
			abs := done + step
			if *ckpt != "" && abs%*ckptEvery == 0 {
				if err := learner.SaveCheckpointRotate(*ckpt, abs, *ckptKeep); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}
		})
	}
	meter.Finish()
	if emit != nil {
		if err := emit.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if ctx.Err() != nil {
		// Interrupted: persist exactly where training stopped, so a rerun
		// resumes with a bitwise-identical loss curve.
		if *ckpt != "" {
			if err := learner.SaveCheckpointRotate(*ckpt, learner.StepsDone(), *ckptKeep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("interrupted at step %d; checkpoint saved to %s — rerun to resume\n",
				learner.StepsDone(), *ckpt)
		} else {
			fmt.Printf("interrupted at step %d (no -checkpoint set; progress lost)\n", learner.StepsDone())
		}
		os.Exit(130)
	}
	model := &core.Model{Policy: learner.Policy, Mask: cfg.Mask, GR: cfg.GR.Fill()}
	if model.Mask == nil {
		model.Mask = gr.MaskFull()
	}
	if err := model.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (policy: %d params)\n", *out, nn.ParamCount(model.Policy))
	if *publish != "" {
		// The registry write is the candidate's birth certificate: the
		// checkpoint lands under the registry before the journal records
		// it, so a crash here leaves at worst an orphan file, never a
		// half-registered candidate. Promotion stays a separate,
		// gate-controlled step (promote.RunGate / the serving daemon).
		r, err := promote.OpenRegistry(*publish)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		id, err := r.Publish(model, promote.Meta{
			Provenance: "sage-train",
			TrainStep:  learner.StepsDone(),
		})
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("published candidate %s to %s\n", id, *publish)
	}
}

// runWorker is the -worker mode: one data-parallel shard worker driven
// by a sage-coord coordinator. The coordinator announces the training
// config and mask, so only the pool and worker slot are local decisions.
func runWorker(ctx context.Context, coordAddr string, index int, poolPath string, logEvery, redials int) int {
	// Validate the address before loading a multi-GB pool.
	if _, _, err := dist.ParseAddr(coordAddr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pool, err := collector.Load(poolPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	id := fmt.Sprintf("%s:%d", host, os.Getpid())
	fmt.Printf("worker %d (%s): joining coordinator %s\n", index, id, coordAddr)
	err = dist.RunTrainWorker(ctx, dist.TrainWorkerConfig{
		Coordinator:    coordAddr,
		ID:             id,
		Index:          index,
		Pool:           pool,
		RedialAttempts: redials,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		OnStep: func(step int) {
			if logEvery > 0 && step%logEvery == 0 {
				fmt.Printf("worker %d: step %6d applied\n", index, step)
			}
		},
	})
	switch {
	case err == nil:
		fmt.Printf("worker %d: run complete\n", index)
		return 0
	case errors.Is(err, dist.ErrRevoked):
		// Same contract as sage-collect -agent: the coordinator fenced
		// this session off (a replacement Hello took the worker slot, or
		// the lease lapsed). The host is healthy — a supervisor should
		// relaunch rather than alert.
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", index, err)
		return 4
	case ctx.Err() != nil:
		fmt.Printf("worker %d: drained on signal\n", index)
		return 130
	default:
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", index, err)
		return 1
	}
}
