// Command sage-train runs the Core Learning block: offline CRR training on
// a collected pool (phase 2 of Fig. 3). No network environment is touched.
//
// Usage:
//
//	sage-train -pool pool.gob.gz -out sage.model -steps 20000 -enc 128 -gru 128
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/rl"
)

func main() {
	var (
		poolPath  = flag.String("pool", "pool.gob.gz", "input pool file")
		out       = flag.String("out", "sage.model", "output model file")
		steps     = flag.Int("steps", 2000, "CRR gradient steps")
		enc       = flag.Int("enc", 32, "encoder width")
		gru       = flag.Int("gru", 16, "GRU width")
		kMix      = flag.Int("gmm", 3, "GMM components")
		atoms     = flag.Int("atoms", 21, "critic atoms")
		mask      = flag.String("mask", "full", "input mask: full|no-minmax|no-rttvar|no-lossinf")
		workers   = flag.Int("workers", 1, "data-parallel training workers")
		seed      = flag.Int64("seed", 1, "seed")
		logEvery  = flag.Int("log-every", 100, "progress period in steps")
		ckpt      = flag.String("checkpoint", "", "checkpoint file (written every checkpoint-every steps; resumed from if present)")
		ckptEvery = flag.Int("checkpoint-every", 1000, "checkpoint period in steps")
	)
	flag.Parse()

	pool, err := collector.Load(*poolPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("pool: %d trajectories, %d transitions\n", len(pool.Trajs), pool.Transitions())

	var m []int
	switch *mask {
	case "full":
		m = nil
	case "no-minmax":
		m = gr.MaskNoMinMax()
	case "no-rttvar":
		m = gr.MaskNoRTTVar()
	case "no-lossinf":
		m = gr.MaskNoLossInflight()
	default:
		fmt.Fprintf(os.Stderr, "unknown mask %q\n", *mask)
		os.Exit(2)
	}

	cfg := core.Config{
		GR:   pool.GR,
		Mask: m,
		CRR: rl.CRRConfig{
			Policy:  nn.PolicyConfig{Enc: *enc, Hidden: *gru, ResBlocks: 2, K: *kMix},
			Critic:  nn.CriticConfig{Hidden: 2 * *enc, Atoms: *atoms},
			Steps:   *steps,
			Workers: *workers,
			Seed:    *seed,
		},
	}
	start := time.Now()
	ds := rl.BuildDataset(pool, m)
	var learner *rl.CRR
	done := 0
	if *ckpt != "" {
		if resumed, steps, err := rl.LoadCheckpoint(*ckpt, ds); err == nil {
			learner = resumed
			done = steps
			fmt.Printf("resumed %s at step %d\n", *ckpt, steps)
		}
	}
	if learner == nil {
		crr := cfg.CRR
		learner = rl.NewCRR(ds, crr)
	}
	remaining := *steps - done
	if remaining < 0 {
		remaining = 0
	}
	learner.Cfg.Steps = remaining
	learner.Train(ds, func(step int, cl, pl float64) {
		abs := done + step
		if abs%*logEvery == 0 {
			fmt.Printf("step %6d  critic %.4f  policy %.4f  (%s)\n",
				abs, cl, pl, time.Since(start).Round(time.Second))
		}
		if *ckpt != "" && abs%*ckptEvery == 0 {
			if err := learner.SaveCheckpoint(*ckpt, abs); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	})
	model := &core.Model{Policy: learner.Policy, Mask: cfg.Mask, GR: cfg.GR.Fill()}
	if model.Mask == nil {
		model.Mask = gr.MaskFull()
	}
	if err := model.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (policy: %d params)\n", *out, nn.ParamCount(model.Policy))
}
