// Command sage-loop closes the continual-learning loop: it tails the
// trace spool a sage-serve daemon writes (-trace-spool), gates and admits
// live decision windows into a regime-balanced experience pool, retrains
// the incumbent incrementally when enough fresh experience accumulates,
// publishes the candidate into the model registry, and runs the shadow
// replay + dominance gate that decides promotion. A promoted candidate
// becomes the incumbent sage-serve hot-swaps to on its next SIGHUP — the
// full serve → spool → gate → retrain → publish → shadow → promote →
// hot-swap cycle with no human in it.
//
// Usage:
//
//	sage-loop -spool /var/lib/sage/spool -state /var/lib/sage/loop \
//	          -registry /var/lib/sage/registry -pool offline.gob.gz
//	sage-loop ... -once            # one poll/round step, then exit
//	sage-loop ... -interval 30s    # daemon mode polling cadence
//
// Every stage journals its progress before the next starts: SIGKILL at
// any point and a restarted sage-loop resumes the open round at the first
// uncommitted stage, with no trajectory lost, duplicated, or counted
// twice (spooled == admitted + quarantined + skipped always balances).
// Retraining is deterministic per round, so even a kill between "model
// published" and "journal written" converges to the same fingerprint and
// the duplicate publish is recognized as already done.
//
// Exit codes (the repo-wide daemon table):
//
//	0    clean exit (-once complete, or idle daemon stopped)
//	1    fatal runtime error
//	2    usage error
//	3    state integrity failure: a journal, spool segment, or registry
//	     model is corrupt beyond the torn-tail repair — operator
//	     intervention, not a restart, fixes this
//	130  signal-initiated graceful stop
//	137  crash-injection exit (SAGE_LOOP_KILL_STAGE, test harness only)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sage/internal/collector"
	"sage/internal/feedback"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/promote"
	"sage/internal/rl"
	"sage/internal/safeio"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		spoolDir    = flag.String("spool", "", "trace spool dir written by sage-serve -trace-spool (required)")
		stateDir    = flag.String("state", "", "loop state dir: ingest + loop journals, round artifacts (required)")
		registryDir = flag.String("registry", "", "model registry dir shared with sage-serve (required)")
		poolPath    = flag.String("pool", "", "offline experience pool mixed into every round (empty = train on live experience alone)")
		mix         = flag.Float64("mix", 0.5, "live fraction of each round's training mix")
		maskName    = flag.String("mask", "full", "input mask: full|no-minmax|no-rttvar|no-lossinf")

		quota       = flag.Int("quota", 64, "admitted windows retained per traffic regime")
		minAdmitted = flag.Int("min-admitted", 8, "fresh admitted windows that trigger a retraining round")
		minRegimes  = flag.Int("min-regimes", 1, "distinct regimes required in the pool before a round starts")
		maxFallback = flag.Float64("max-fallback", 0.5, "skip windows whose fallback-decision share exceeds this")

		steps     = flag.Int("steps", 2000, "CRR gradient steps per round")
		enc       = flag.Int("enc", 32, "encoder width")
		gru       = flag.Int("gru", 16, "GRU width")
		kMix      = flag.Int("gmm", 3, "GMM components")
		atoms     = flag.Int("atoms", 21, "critic atoms")
		seed      = flag.Int64("seed", 1, "seed (drives the round mix and training determinism)")
		warmStart = flag.Bool("warm-start", true, "seed each round's learner from the incumbent's weights")
		ckptEvery = flag.Int("checkpoint-every", 500, "round checkpoint period in steps")
		ckptKeep  = flag.Int("checkpoint-keep", 2, "previous checkpoint generations kept")

		gateLevel = flag.String("gate-level", "tiny", "promotion gate replay suite: tiny|small|full")
		gateDur   = flag.Duration("gate-duration", 10*time.Second, "per-scenario gate rollout duration (simulated time)")
		gateSeed  = flag.Int64("gate-seed", 1, "gate replay seed")
		maxDiv    = flag.Float64("max-shadow-div", 1.0, "reject candidates whose mean live action divergence exceeds this")

		interval   = flag.Duration("interval", 10*time.Second, "daemon polling cadence")
		once       = flag.Bool("once", false, "run a single step (poll + at most one round) and exit")
		eventsPath = flag.String("events", "", "append loop events (rounds/publishes/verdicts) to this JSONL file")
		pprofAddr  = flag.String("pprof", "", "serve pprof + /debug/vars on this addr")
	)
	flag.Parse()
	if *spoolDir == "" || *stateDir == "" || *registryDir == "" {
		fmt.Fprintln(os.Stderr, "sage-loop: -spool, -state, and -registry are all required")
		return 2
	}
	var mask []int
	switch *maskName {
	case "full":
		mask = gr.MaskFull()
	case "no-minmax":
		mask = gr.MaskNoMinMax()
	case "no-rttvar":
		mask = gr.MaskNoRTTVar()
	case "no-lossinf":
		mask = gr.MaskNoLossInflight()
	default:
		fmt.Fprintf(os.Stderr, "sage-loop: unknown mask %q\n", *maskName)
		return 2
	}
	lvl, ok := map[string]netem.GridLevel{"tiny": netem.GridTiny, "small": netem.GridSmall, "full": netem.GridFull}[*gateLevel]
	if !ok {
		fmt.Fprintf(os.Stderr, "sage-loop: unknown -gate-level %q\n", *gateLevel)
		return 2
	}

	reg := telemetry.NewRegistry()
	reg.PublishExpvar("sage-loop")
	if *pprofAddr != "" {
		if _, err := telemetry.ServeDebug(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	var events *telemetry.JSONL
	if *eventsPath != "" {
		j, err := telemetry.CreateJSONL(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer j.Close()
		events = j
	}

	grc := gr.Config{}.Fill()
	var offline *collector.Pool
	if *poolPath != "" {
		p, err := collector.Load(*poolPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sage-loop:", err)
			return stateExitCode(err)
		}
		offline = p
		grc = p.GR
		fmt.Fprintf(os.Stderr, "sage-loop: offline ballast: %d trajectories\n", len(p.Trajs))
	}

	cfg := feedback.LoopConfig{
		SpoolDir:        *spoolDir,
		StateDir:        *stateDir,
		RegistryDir:     *registryDir,
		Offline:         offline,
		LiveFrac:        *mix,
		Mask:            mask,
		GR:              grc,
		QuotaPerRegime:  *quota,
		MaxFallbackFrac: *maxFallback,
		MinAdmitted:     *minAdmitted,
		MinRegimes:      *minRegimes,
		CRR: rl.CRRConfig{
			Policy: nn.PolicyConfig{Enc: *enc, Hidden: *gru, ResBlocks: 2, K: *kMix},
			Critic: nn.CriticConfig{Hidden: 2 * *enc, Atoms: *atoms},
			Steps:  *steps,
			Seed:   *seed,
		},
		WarmStart:       *warmStart,
		CheckpointEvery: *ckptEvery,
		CheckpointKeep:  *ckptKeep,
		Gate: promote.GateConfig{
			Level:               lvl,
			Duration:            sim.FromSeconds(gateDur.Seconds()),
			Seed:                *gateSeed,
			MaxShadowDivergence: *maxDiv,
		},
		Metrics: reg,
		Events:  events,
		Kill:    killSeam(),
	}

	lp, err := feedback.OpenLoop(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sage-loop:", err)
		return stateExitCode(err)
	}
	defer lp.Close()
	if n, open := lp.Round(); open {
		fmt.Fprintf(os.Stderr, "sage-loop: resuming open round %d\n", n)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *once {
		verdict, err := lp.Step(ctx)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "sage-loop: interrupted; round state journaled for resume")
				return 130
			}
			fmt.Fprintln(os.Stderr, "sage-loop:", err)
			return stateExitCode(err)
		}
		c := lp.Ingester().Counts()
		fmt.Fprintf(os.Stderr, "sage-loop: ingested %d (admitted %d, quarantined %d, skipped %d), verdict=%v\n",
			c.Ingested, c.Admitted, c.Quarantined, c.Skipped, verdict)
		return 0
	}

	fmt.Fprintf(os.Stderr, "sage-loop: watching %s every %s\n", *spoolDir, *interval)
	err = lp.Run(ctx, *interval)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "sage-loop: stopping\n%s", reg)
		return 130
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sage-loop:", err)
		return stateExitCode(err)
	}
	return 0
}

// killSeam wires SAGE_LOOP_KILL_STAGE: when set, the loop exits 137
// (SIGKILL's code) immediately after that stage's durable record commits.
// Every journal append is fsynced before the stage boundary, so os.Exit
// here is indistinguishable from a real kill -9 landing at the boundary —
// which is exactly what the integration tests exercise.
func killSeam() func(string) {
	target := os.Getenv("SAGE_LOOP_KILL_STAGE")
	if target == "" {
		return nil
	}
	return func(stage string) {
		if stage == target {
			fmt.Fprintf(os.Stderr, "sage-loop: SAGE_LOOP_KILL_STAGE=%s hit, dying\n", stage)
			os.Exit(137)
		}
	}
}

// stateExitCode classifies failures per the exit-code table: integrity
// problems in any journal, spool segment, pool file, or registry model
// are exit 3 — restarting cannot repair them.
func stateExitCode(err error) int {
	switch {
	case errors.Is(err, safeio.ErrLogCorrupt),
		errors.Is(err, safeio.ErrCorrupt),
		errors.Is(err, safeio.ErrTruncated),
		errors.Is(err, promote.ErrNoIncumbent):
		return 3
	default:
		return 1
	}
}
