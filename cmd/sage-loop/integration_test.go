//go:build integration

// Closed-loop integration tests: real sage-serve and sage-loop binaries
// sharing a spool, a state dir, and a registry over the filesystem. The
// kill matrix kills the loop daemon at every stage boundary and asserts
// the resumed loop loses nothing, duplicates nothing, and still lands
// exactly one promoted candidate the serving daemon can boot from. The
// soak drives the serving plane with the chaos load generator, churns
// the loop daemon through env-seam kills plus a raw SIGKILL, and checks
// the spool-to-verdict accounting balances to the record.
package main

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sage/internal/chaos"
	"sage/internal/feedback"
	"sage/internal/gr"
	"sage/internal/promote"
	"sage/internal/serve"
)

func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

type loopEnv struct {
	spool, state, registry string
}

func newLoopEnv(t *testing.T) loopEnv {
	base := t.TempDir()
	return loopEnv{
		spool:    filepath.Join(base, "spool"),
		state:    filepath.Join(base, "state"),
		registry: filepath.Join(base, "registry"),
	}
}

// loopArgs returns the shared daemon configuration — a tiny network and a
// two-scenario gate so each round finishes in seconds.
func (e loopEnv) loopArgs(extra ...string) []string {
	args := []string{
		"-spool", e.spool, "-state", e.state, "-registry", e.registry,
		"-min-admitted", "2", "-warm-start=false",
		"-steps", "40", "-enc", "8", "-gru", "4", "-gmm", "2", "-atoms", "5",
		"-checkpoint-every", "5", "-gate-level", "tiny", "-gate-duration", "1s",
	}
	return append(args, extra...)
}

// runLoopOnce runs a single sage-loop -once step, optionally with the
// kill seam armed, and returns the exit code plus combined output.
func runLoopOnce(bin string, env loopEnv, killStage string) (int, string) {
	cmd := exec.Command(bin, env.loopArgs("-once")...)
	if killStage != "" {
		cmd.Env = append(os.Environ(), "SAGE_LOOP_KILL_STAGE="+killStage)
	}
	out, err := cmd.CombinedOutput()
	return exitCode(err), string(out)
}

// regimeState builds a full-width GR state vector exhibiting one traffic
// regime (indices follow internal/feedback/regime.go).
func regimeState(regime string, i int) []float64 {
	s := make([]float64, gr.StateDim)
	jit := float64(i%7) * 0.01
	srtt, floor, loss, dr, drMax := 20+jit, 20.0, 0.0, 50.0, 60.0
	switch regime {
	case "lossy":
		loss = 2
	case "bufferbloat":
		srtt = 80 + jit
	case "flappy":
		dr = 10
		if i%2 == 1 {
			dr = 90
		}
		drMax = 95
	}
	s[0], s[11], s[60], s[64], s[66] = srtt, floor, loss, dr, drMax
	return s
}

func startServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "serve.sock")
	cmd := exec.Command(bin, append([]string{"-socket", sock}, args...)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := os.Stat(sock); err == nil {
			return cmd, sock
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("sage-serve never created its socket")
	return nil, ""
}

// drainServe SIGTERMs the serving daemon and waits for the graceful-stop
// exit: the drain flushes every open trace window through the spool sink.
func drainServe(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); exitCode(err) != 130 {
		t.Fatalf("serve drain exit %d, want 130", exitCode(err))
	}
}

// fillSpool runs sage-serve -trace-spool, serves sessions across all four
// traffic regimes through the real socket, and drains so every window
// lands in the spool.
func fillSpool(t *testing.T, serveBin string, env loopEnv, sessions int) {
	t.Helper()
	cmd, sock := startServe(t, serveBin, "-trace-spool", env.spool)
	cl, err := serve.Dial(sock)
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	sid := uint64(1)
	for _, regime := range []string{"steady", "lossy", "bufferbloat", "flappy"} {
		for n := 0; n < sessions; n++ {
			cwnd := 100.0
			for i := 0; i < 8; i++ {
				newCwnd, status, err := cl.Decide(sid, cwnd, regimeState(regime, i))
				if err != nil {
					t.Fatalf("decide: %v", err)
				}
				if status == serve.StatusOK {
					cwnd = newCwnd
				}
			}
			if err := cl.CloseSession(sid); err != nil {
				t.Fatalf("close session: %v", err)
			}
			sid++
		}
	}
	cl.Close()
	drainServe(t, cmd)
}

// spoolRecords counts complete records across the spool chain.
func spoolRecords(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	if _, err := feedback.TailSpool(dir, feedback.Cursor{}, func(feedback.Cursor, []byte) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

// verifyAccounting replays the loop's journals from disk and asserts the
// exactly-once invariant: every spooled record got exactly one
// disposition, and the identity balances.
func verifyAccounting(t *testing.T, env loopEnv) feedback.Counts {
	t.Helper()
	in, err := feedback.OpenIngester(feedback.IngestConfig{SpoolDir: env.spool, StateDir: env.state, GR: gr.Config{}.Fill()})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	c := in.Counts()
	if spooled := spoolRecords(t, env.spool); c.Ingested != spooled {
		t.Fatalf("ingested %d of %d spooled records (lost or duplicated windows)", c.Ingested, spooled)
	}
	if c.Ingested != c.Admitted+c.Quarantined+c.Skipped {
		t.Fatalf("accounting identity broken: %+v", c)
	}
	return c
}

// The acceptance matrix: kill the loop at every stage boundary (the env
// seam exits 137 the instant that stage's durable record commits —
// equivalent to kill -9 landing there), resume, and end with exactly one
// promoted candidate served end to end by a fresh sage-serve.
func TestClosedLoopKillAtEveryStage(t *testing.T) {
	serveBin := buildBinary(t, "./sage-serve")
	loopBin := buildBinary(t, "./sage-loop")
	env := newLoopEnv(t)
	fillSpool(t, serveBin, env, 2)

	for _, stage := range []string{"poll", "round", "trained", "published", "verdict"} {
		if code, out := runLoopOnce(loopBin, env, stage); code != 137 {
			t.Fatalf("kill at %s: exit %d, want 137\n%s", stage, code, out)
		}
	}
	// Clean resume: the verdict landed before the last kill fired, so this
	// run finds round 1 closed, polls nothing new, and exits clean.
	if code, out := runLoopOnce(loopBin, env, ""); code != 0 {
		t.Fatalf("clean resume: exit %d\n%s", code, out)
	}

	reg, err := promote.OpenRegistry(env.registry)
	if err != nil {
		t.Fatal(err)
	}
	if models := reg.List(); len(models) != 1 {
		t.Fatalf("registry holds %d models, want exactly 1 (idempotent publish through 5 kills)", len(models))
	}
	inc, ok := reg.Incumbent()
	if !ok {
		t.Fatal("no incumbent promoted after the kill matrix")
	}
	if inc.Provenance != "sage-loop" || !strings.HasPrefix(inc.ID, "sage-loop-") {
		t.Fatalf("incumbent %s (provenance %s), want a sage-loop candidate", inc.ID, inc.Provenance)
	}
	reg.Close()

	c := verifyAccounting(t, env)
	if c.Admitted < 2 {
		t.Fatalf("admitted %d windows, want at least the round trigger threshold", c.Admitted)
	}

	// Close the loop's final arc: a serving daemon boots on the registry,
	// serves decisions from the loop-trained incumbent, and reports it.
	cmd, sock := startServe(t, serveBin, "-registry", env.registry)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	cl, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Decide(1, 100, regimeState("steady", 0)); err != nil {
		t.Fatalf("decide against loop-trained incumbent: %v", err)
	}
	status, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, inc.ID) {
		t.Fatalf("daemon status %q does not name the loop's incumbent %s", status, inc.ID)
	}
}

// Soak: the chaos load generator hammers a spooling sage-serve, then the
// loop daemon runs under kill churn — env-seam kills at stage boundaries
// plus a raw SIGKILL of the daemon mode mid-flight — and the books still
// balance: spooled == ingested == admitted + quarantined + skipped, with
// a sage-loop candidate in the registry.
func TestClosedLoopSoak(t *testing.T) {
	serveBin := buildBinary(t, "./sage-serve")
	loopBin := buildBinary(t, "./sage-loop")
	env := newLoopEnv(t)

	cmd, sock := startServe(t, serveBin, "-trace-spool", env.spool, "-trace-window", "32")
	stats := chaos.RunLoad(chaos.LoadSpec{
		Dial:     func() (net.Conn, error) { return net.Dial("unix", sock) },
		Conns:    8,
		Duration: 2 * time.Second,
		Interval: time.Millisecond,
		StateDim: gr.StateDim,
		Seed:     1,
	})
	if stats.Sent != stats.OK+stats.Fallback+stats.Busy+stats.Overload+stats.Errors {
		t.Fatalf("load accounting broken: %+v", stats)
	}
	if stats.OK == 0 {
		t.Fatalf("load run got no OK decisions: %+v", stats)
	}
	drainServe(t, cmd)

	if n := spoolRecords(t, env.spool); n == 0 {
		t.Fatal("load run spooled no windows")
	}

	// Churn: die at two stage boundaries via the seam, then SIGKILL the
	// daemon mode for real mid-cadence.
	for _, stage := range []string{"poll", "trained"} {
		if code, out := runLoopOnce(loopBin, env, stage); code != 137 {
			t.Fatalf("churn kill at %s: exit %d\n%s", stage, code, out)
		}
	}
	daemon := exec.Command(loopBin, env.loopArgs("-interval", "100ms")...)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	daemon.Process.Signal(syscall.SIGKILL)
	daemon.Wait()

	// Recovery: clean -once runs until the loop is idle again.
	for i := 0; i < 3; i++ {
		if code, out := runLoopOnce(loopBin, env, ""); code != 0 {
			t.Fatalf("clean run %d: exit %d\n%s", i, code, out)
		}
	}

	c := verifyAccounting(t, env)
	if c.Admitted == 0 {
		t.Fatal("soak admitted nothing")
	}
	reg, err := promote.OpenRegistry(env.registry)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, ok := reg.Incumbent(); !ok {
		t.Fatal("soak never promoted a candidate")
	}
	for _, m := range reg.List() {
		if m.Provenance != "sage-loop" {
			t.Fatalf("foreign model %s (provenance %s) in the loop's registry", m.ID, m.Provenance)
		}
	}
}
