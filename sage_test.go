package sage

import "testing"

// The façade test walks the public API end to end at toy scale.
func TestPublicPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	scens := append(SetI(GridTiny, 3*Second), SetII(GridTiny, 6*Second)...)
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	pool, err := Collect([]string{"cubic", "vegas"}, scens[:6])
	if err != nil {
		t.Fatal(err)
	}
	if pool.Transitions() == 0 {
		t.Fatal("empty pool")
	}
	cfg := TrainConfig{}
	cfg.CRR.Steps = 30
	cfg.CRR.Policy.Enc = 12
	cfg.CRR.Policy.Hidden = 6
	cfg.CRR.Policy.K = 2
	model := Train(pool, cfg)
	res := Deploy(model, scens[0])
	if res.ThroughputBps <= 0 {
		t.Fatal("deployed model moved no traffic")
	}
	ref := RunScheme("cubic", scens[0])
	if ref.ThroughputBps <= 0 {
		t.Fatal("reference scheme moved no traffic")
	}
	if len(PoolSchemes()) != 13 {
		t.Fatalf("pool schemes = %d", len(PoolSchemes()))
	}
}
