package sage

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (deliverable (d)): one Benchmark per experiment, each printing
// the same rows/series the paper reports. cmd/sage-bench runs the identical
// code as a CLI.
//
//	go test -bench . -benchtime 1x            # the full suite (minutes)
//	go test -bench Fig09 -benchtime 1x        # one figure
//
// Expensive artifacts (the pool, the trained Sage model, every baseline)
// are built once per process and shared across benchmarks, so each
// benchmark's first iteration pays only its own marginal cost and later
// iterations are nearly free. Run with -benchtime 1x: the point of these
// benchmarks is the regenerated tables, not ns/op.

import (
	"os"
	"sync"
	"testing"

	"sage/internal/cc"
	"sage/internal/exp"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

var (
	benchOnce sync.Once
	benchArt  *exp.Artifacts
)

// artifacts returns the process-wide artifact cache; SAGE_SIZING=paper
// switches the whole suite to paper scale.
func artifacts() *exp.Artifacts {
	benchOnce.Do(func() {
		s := exp.Quick()
		if os.Getenv("SAGE_SIZING") == "paper" {
			s = exp.Paper()
		}
		benchArt = exp.NewArtifacts(s)
	})
	return benchArt
}

// runExp executes the experiment once (memoized pieces make repeat
// iterations cheap) and prints its tables.
func runExp(b *testing.B, id string) {
	b.Helper()
	e, err := exp.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	a := artifacts()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			exp.RunAndPrint(e, a, os.Stdout)
		} else {
			// Re-score from memoized artifacts; output printed once.
			e.Run(a)
		}
	}
}

func BenchmarkFig01HeuristicWinningRates(b *testing.B) { runExp(b, "fig01") }
func BenchmarkFig05FriendlinessReward(b *testing.B)    { runExp(b, "fig05") }
func BenchmarkFig07TrainingCurve(b *testing.B)         { runExp(b, "fig07") }
func BenchmarkFig08Internet(b *testing.B)              { runExp(b, "fig08") }
func BenchmarkFig09MLLeague(b *testing.B)              { runExp(b, "fig09") }
func BenchmarkFig10DelayLeague(b *testing.B)           { runExp(b, "fig10") }
func BenchmarkFig11DistanceCDF(b *testing.B)           { runExp(b, "fig11") }
func BenchmarkFig12Ablation(b *testing.B)              { runExp(b, "fig12") }
func BenchmarkFig13Similarity(b *testing.B)            { runExp(b, "fig13") }
func BenchmarkFig14Granularity(b *testing.B)           { runExp(b, "fig14") }
func BenchmarkFig15PoolDiversity(b *testing.B)         { runExp(b, "fig15") }
func BenchmarkFig16TSNE(b *testing.B)                  { runExp(b, "fig16") }
func BenchmarkFig17Behavior(b *testing.B)              { runExp(b, "fig17") }
func BenchmarkFig18Fairness(b *testing.B)              { runExp(b, "fig18") }
func BenchmarkFig19Friendliness(b *testing.B)          { runExp(b, "fig19") }
func BenchmarkFig20Fig21TightMargin(b *testing.B)      { runExp(b, "fig20_21") }
func BenchmarkFig22Frontier(b *testing.B)              { runExp(b, "fig22") }
func BenchmarkFig23AQM(b *testing.B)                   { runExp(b, "fig23") }
func BenchmarkFig24Fig25Dynamics(b *testing.B)         { runExp(b, "fig24_25") }
func BenchmarkFig27Fig28Others(b *testing.B)           { runExp(b, "fig27_28") }
func BenchmarkTable2Table3AlphaThree(b *testing.B)     { runExp(b, "table2_3") }

// telemetryScenario is the small fixed rollout behind the telemetry
// on/off comparison: 24 Mb/s, 20 ms, 2 BDP, 4 simulated seconds.
func telemetryScenario() netem.Scenario {
	rate := netem.FlatRate(netem.Mbps(24))
	mrtt := sim.FromMillis(20)
	return netem.Scenario{
		Name:       "bench-flat",
		Rate:       rate,
		MinRTT:     mrtt,
		QueueBytes: 2 * netem.BDPBytes(rate.At(0), mrtt),
		Duration:   4 * sim.Second,
	}
}

// BenchmarkRolloutTelemetryOff/On bracket the cost of datapath tracing:
// the same rollout with Options.Trace nil versus a live FlowTrace
// recording every GR tick. The delta is the per-run price of -trace.
// Unlike the figure benchmarks these are real ns/op measurements — run
// with a normal -benchtime.
func BenchmarkRolloutTelemetryOff(b *testing.B) {
	sc := telemetryScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rollout.Run(sc, cc.MustNew("cubic"), rollout.Options{CollectSteps: true})
	}
}

func BenchmarkRolloutTelemetryOn(b *testing.B) {
	sc := telemetryScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := telemetry.NewFlowTrace(0)
		rollout.Run(sc, cc.MustNew("cubic"), rollout.Options{CollectSteps: true, Trace: tr})
		if tr.Len() == 0 {
			b.Fatal("trace recorded nothing")
		}
	}
}
