// Friendliness reproduces the flavour of the paper's Set II: each scheme
// joins a bottleneck already carrying a Cubic flow (the Internet's default)
// and the run reports how fairly the newcomer shares — the Sfr score and the
// achieved fraction of the ideal fair share.
//
// Run:
//
//	go run ./examples/friendliness
package main

import (
	"fmt"

	"sage/internal/cc"
	"sage/internal/eval"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
)

func main() {
	mrtt := 40 * sim.Millisecond
	sc := netem.Scenario{
		Name:       "vs-cubic-24mbps",
		Rate:       netem.FlatRate(netem.Mbps(24)),
		MinRTT:     mrtt,
		QueueBytes: 4 * netem.BDPBytes(netem.Mbps(24), mrtt),
		Duration:   40 * sim.Second,
		CubicFlows: 1,
		TestStart:  4 * sim.Second,
	}
	fmt.Printf("bottleneck: 24 Mb/s, 40 ms RTT, 4-BDP buffer; Cubic arrives first\n")
	fmt.Printf("ideal fair share: %.1f Mb/s\n\n", sc.FairShare()/1e6)
	fmt.Println("scheme      scheme(Mb/s)  cubic(Mb/s)   Sfr    share")
	for _, name := range []string{"cubic", "newreno", "vegas", "bbr2", "copa", "ledbat", "yeah", "vivace"} {
		res := rollout.Run(sc, cc.MustNew(name), rollout.Options{})
		sfr := eval.FriendlinessScore(res.ThroughputBps, res.FairShareBps)
		fmt.Printf("%-10s  %11.2f  %11.2f  %5.2f  %5.1f%%\n",
			name, res.ThroughputBps/1e6, res.BgThroughput[0]/1e6, sfr,
			100*res.ThroughputBps/res.FairShareBps)
	}
	fmt.Println("\nSfr = |fair share − achieved| in Mb/s; smaller is friendlier.")
}
