// Stepscenario reproduces the flavour of the paper's Fig. 17: it runs a set
// of congestion-control schemes through a sudden bandwidth step (24→48 Mb/s)
// and prints each scheme's throughput/delay trajectory, showing who discovers
// the new capacity and how fast.
//
// Run:
//
//	go run ./examples/stepscenario
package main

import (
	"fmt"

	"sage/internal/cc"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
)

func main() {
	mrtt := 20 * sim.Millisecond
	sc := netem.Scenario{
		Name:       "step-24to48",
		Rate:       netem.StepRate(netem.Mbps(24), netem.Mbps(48), 10*sim.Second),
		MinRTT:     mrtt,
		QueueBytes: 450_000, // 300 packets, as in Fig. 17
		Duration:   20 * sim.Second,
	}
	schemes := []string{"cubic", "bbr2", "vegas", "yeah", "vivace"}
	for _, name := range schemes {
		res := rollout.Run(sc, cc.MustNew(name), rollout.Options{SamplePeriod: 2 * sim.Second})
		fmt.Printf("\n%s (overall: %.2f Mb/s, owd %.1f ms, loss %.2f%%)\n",
			name, res.ThroughputBps/1e6, res.AvgOWD.Millis(), res.LossRate*100)
		fmt.Println("   t(s)   thr(Mb/s)   owd(ms)   cwnd")
		for _, s := range res.Series {
			fmt.Printf("  %5.1f  %9.2f  %8.1f  %5.0f\n",
				s.At.Seconds(), s.ThrBps/1e6, s.OWD.Millis(), s.Cwnd)
		}
	}
}
