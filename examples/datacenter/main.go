// Datacenter demonstrates the ECN substrate: DCTCP under step marking (the
// K-threshold queue it was designed for) against Cubic on the same
// bottleneck. DCTCP's proportional response to the marked fraction keeps
// the queue — and therefore latency — a fraction of what the loss-driven
// scheme needs, at equal throughput.
//
// Run:
//
//	go run ./examples/datacenter
package main

import (
	"fmt"

	"sage/internal/cc"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
)

func main() {
	run := func(scheme, qname string, q netem.Queue) {
		loop := sim.NewLoop()
		n := netem.New(loop, netem.Config{
			Rate:   netem.FlatRate(netem.Mbps(100)),
			MinRTT: 2 * sim.Millisecond, // datacenter-ish RTT
			Queue:  q,
		})
		fl := tcp.NewFlow(loop, n, 1, cc.MustNew(scheme), tcp.Options{
			MinRTO: 10 * sim.Millisecond, // datacenter RTO floor
		})
		fl.Conn.Start(0)
		loop.RunUntil(10 * sim.Second)
		thr := float64(fl.Sink.RxBytes) * 8 / 10
		fmt.Printf("%-8s over %-10s thr %6.1f Mb/s   owd %6.2f ms   lost %5d   marks %5d\n",
			scheme, qname, thr/1e6, fl.Sink.OWDAvg().Millis(),
			fl.Conn.LostPkts(), fl.Conn.ECEPkts())
	}
	const buf = 1 << 20
	fmt.Println("100 Mb/s bottleneck, 2 ms RTT:")
	run("dctcp", "ECN(K=20)", netem.NewThresholdECN(buf, 20))
	run("cubic", "ECN(K=20)", netem.NewThresholdECN(buf, 20))
	run("dctcp", "PIE", netem.NewPIE(buf, 1))
	run("cubic", "TDrop", netem.NewDropTail(buf))
}
