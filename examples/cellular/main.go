// Cellular runs schemes over synthetic highly-variable cellular traces (the
// Fig. 8c regime): Markov-modulated rates between 0.5 and 50 Mb/s with short
// outages. Delay-oriented schemes should keep delay low at some throughput
// cost; loss-based schemes fill the deep buffer.
//
// Run:
//
//	go run ./examples/cellular
package main

import (
	"fmt"

	"sage/internal/cc"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/trace"
)

func main() {
	scens := trace.CellularScenarios(3, 20*sim.Second)
	schemes := []string{"cubic", "bbr2", "vegas", "sprout", "c2tcp", "westwood"}
	fmt.Println("scheme      trace        thr(Mb/s)  avg owd(ms)  max owd(ms)")
	for _, name := range schemes {
		for _, sc := range scens {
			res := rollout.Run(sc, cc.MustNew(name), rollout.Options{})
			fmt.Printf("%-10s  %-11s  %9.2f  %11.1f  %11.1f\n",
				name, sc.Name, res.ThroughputBps/1e6, res.AvgOWD.Millis(),
				owdMax(res))
		}
	}
}

func owdMax(res rollout.Result) float64 {
	max := res.AvgOWD
	for _, s := range res.Series {
		if s.OWD > max {
			max = s.OWD
		}
	}
	return max.Millis()
}
