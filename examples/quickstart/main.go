// Quickstart walks the full Sage pipeline end to end at toy scale:
//
//  1. collect a small pool of policies (kernel heuristics × environments),
//  2. train a Sage model offline with CRR — no environment access,
//  3. deploy the learned policy over TCP Pure on an unseen network,
//     and compare it with Cubic on the same network.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/rollout"
	"sage/internal/sim"
)

func main() {
	// 1) Pool of policies: a few heuristics across a tiny environment grid.
	scens := append(
		netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 4 * sim.Second}),
		netem.SetII(netem.SetIIOptions{Level: netem.GridTiny, Duration: 10 * sim.Second})...)
	fmt.Printf("collecting pool: %d schemes x %d environments...\n", 4, len(scens))
	start := time.Now()
	pool, err := collector.Collect(context.Background(), []string{"cubic", "vegas", "bbr2", "westwood"}, scens, collector.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d transitions in %s\n", pool.Transitions(), time.Since(start).Round(time.Millisecond))

	// 2) Offline training. The environments are now "unplugged": Train only
	// reads the pool.
	fmt.Println("training Sage with CRR (offline)...")
	start = time.Now()
	model := core.Train(pool, core.Config{
		CRR: rl.CRRConfig{
			Policy: nn.PolicyConfig{Enc: 24, Hidden: 12, ResBlocks: 2, K: 3},
			Critic: nn.CriticConfig{Hidden: 32, Atoms: 15},
			Steps:  400,
		},
	}, nil)
	fmt.Printf("  trained %d-parameter policy in %s\n",
		nn.ParamCount(model.Policy), time.Since(start).Round(time.Millisecond))

	// 3) Deployment on an unseen network: 36 Mb/s (not in the tiny grid),
	// 30 ms RTT, 2-BDP buffer.
	mrtt := 30 * sim.Millisecond
	unseen := netem.Scenario{
		Name:       "unseen-36mbps-30ms",
		Rate:       netem.FlatRate(netem.Mbps(36)),
		MinRTT:     mrtt,
		QueueBytes: 2 * netem.BDPBytes(netem.Mbps(36), mrtt),
		Duration:   10 * sim.Second,
	}
	sage := eval.ControllerEntrant("sage", func() rollout.Controller { return model.NewAgent(1) })
	for _, ent := range []eval.Entrant{sage, eval.SchemeEntrant("cubic"), eval.SchemeEntrant("vegas")} {
		res := ent.Run(unseen, rollout.Options{})
		fmt.Printf("%-8s thr %6.2f Mb/s  avg RTT %5.1f ms  power(α=2) %.2f\n",
			ent.Name, res.ThroughputBps/1e6, res.AvgRTT.Millis(),
			eval.PowerScore(res.ThroughputBps, res.AvgRTT.Millis(), 2))
	}
}
