module sage

go 1.22
