// Package sage is a from-scratch Go reproduction of "Computers Can Learn
// from the Heuristic Designs and Master Internet Congestion Control"
// (Yen, Abbasloo, Chao — ACM SIGCOMM 2023): the first purely data-driven
// (offline-RL) Internet congestion-control scheme.
//
// The root package is a façade over the internal packages; the typical
// pipeline is:
//
//	scens := append(sage.SetI(sage.GridSmall, 10*sage.Second),
//	                sage.SetII(sage.GridSmall, 30*sage.Second)...)
//	pool, _ := sage.Collect(sage.PoolSchemes(), scens)     // phase 1
//	model := sage.Train(pool, sage.TrainConfig{})          // phase 2 (offline)
//	res   := sage.Deploy(model, scens[0])                  // phase 3
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record; `go test -bench .` and cmd/sage-bench
// regenerate every table and figure of the paper's evaluation.
package sage

import (
	"context"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
)

// Time is a simulated timestamp/duration in microseconds.
type Time = sim.Time

// Common durations.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// GridLevel selects scenario-grid density.
type GridLevel = netem.GridLevel

// Grid densities.
const (
	GridTiny  = netem.GridTiny
	GridSmall = netem.GridSmall
	GridFull  = netem.GridFull
)

// Scenario is one emulated network environment.
type Scenario = netem.Scenario

// Pool is a collected pool of policies.
type Pool = collector.Pool

// Model is a trained Sage policy.
type Model = core.Model

// TrainConfig configures offline training.
type TrainConfig = core.Config

// Result summarizes one deployment run.
type Result = rollout.Result

// PoolSchemes returns the paper's 13-scheme pool of kernel heuristics.
func PoolSchemes() []string { return cc.PoolNames() }

// SetI generates the single-flow scenario set (flat + step links).
func SetI(level GridLevel, duration Time) []Scenario {
	return netem.SetI(netem.SetIOptions{Level: level, Duration: duration})
}

// SetII generates the multi-flow (TCP-friendliness) scenario set.
func SetII(level GridLevel, duration Time) []Scenario {
	return netem.SetII(netem.SetIIOptions{Level: level, Duration: duration})
}

// Collect runs the Policy Collector: every scheme through every scenario.
// Unknown scheme names are rejected up front with an error naming the
// registered schemes.
func Collect(schemes []string, scenarios []Scenario) (*Pool, error) {
	return collector.Collect(context.Background(), schemes, scenarios, collector.Options{})
}

// Train runs the offline CRR learner on the pool.
func Train(pool *Pool, cfg TrainConfig) *Model {
	return core.Train(pool, cfg, nil)
}

// LoadModel reads a model saved with Model.Save.
func LoadModel(path string) (*Model, error) { return core.LoadModel(path) }

// Deploy runs the model's policy (over TCP Pure) through a scenario.
func Deploy(model *Model, sc Scenario) Result {
	ent := eval.ControllerEntrant("sage", func() rollout.Controller { return model.NewAgent(0) })
	return ent.Run(sc, rollout.Options{})
}

// RunScheme runs a named kernel heuristic through a scenario.
func RunScheme(name string, sc Scenario) Result {
	return eval.SchemeEntrant(name).Run(sc, rollout.Options{})
}
